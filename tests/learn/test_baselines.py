"""Tests for the regression/classification strawmen (§IV-A)."""

import numpy as np
import pytest

from repro.learn.baselines import RuntimeRegression, VariantClassifier
from repro.ranking.partial import RankingGroups


@pytest.fixture()
def loglinear_data():
    """Runtime is exactly log-linear in the features: regression's home turf."""
    rng = np.random.default_rng(5)
    X = rng.random((120, 4))
    times = np.exp(1.0 - 1.5 * X[:, 0] + 0.8 * X[:, 2])
    groups = np.repeat(np.arange(6), 20)
    return RankingGroups(X, times, groups)


class TestRuntimeRegression:
    def test_recovers_loglinear_coefficients(self, loglinear_data):
        model = RuntimeRegression(alpha=1e-8).fit(loglinear_data)
        assert model.w_[0] == pytest.approx(-1.5, abs=0.05)
        assert model.w_[2] == pytest.approx(0.8, abs=0.05)

    def test_prediction_accuracy(self, loglinear_data):
        model = RuntimeRegression(alpha=1e-8).fit(loglinear_data)
        pred = model.predict_log_time(loglinear_data.X)
        assert np.allclose(pred, np.log(loglinear_data.times), atol=0.05)

    def test_ranking_perfect_on_own_turf(self, loglinear_data):
        from repro.ranking.kendall import kendall_tau

        model = RuntimeRegression(alpha=1e-8).fit(loglinear_data)
        scores = model.decision_function(loglinear_data.X)
        assert kendall_tau(-scores, loglinear_data.times) > 0.99

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RuntimeRegression().predict_log_time(np.zeros((2, 3)))

    def test_rank_order(self, loglinear_data):
        model = RuntimeRegression().fit(loglinear_data)
        order = model.rank(loglinear_data.X[:10])
        scores = model.decision_function(loglinear_data.X[:10])
        assert (np.diff(scores[order]) <= 1e-12).all()


class TestVariantClassifier:
    @pytest.fixture()
    def winner_data(self):
        """Two clusters of instances with two distinct winning configs."""
        rng = np.random.default_rng(9)
        rows, times, groups = [], [], []
        for g in range(10):
            cluster = g % 2
            for i in range(10):
                tuning = rng.random(3)
                # instance feature identifies the cluster
                inst = np.array([float(cluster)])
                target = np.array([0.2, 0.2, 0.2]) if cluster == 0 else np.array([0.8, 0.8, 0.8])
                t = 1.0 + ((tuning - target) ** 2).sum()
                rows.append(np.concatenate([inst, tuning]))
                times.append(t)
                groups.append(g)
        return RankingGroups(np.array(rows), np.array(times), np.array(groups))

    def test_fit_builds_codebook(self, winner_data):
        clf = VariantClassifier(num_classes=4, tuning_slice=slice(1, 4)).fit(winner_data)
        assert clf.codebook_ is not None
        assert clf.codebook_.shape[1] == 3

    def test_scores_prefer_configs_near_winner(self, winner_data):
        clf = VariantClassifier(num_classes=4, tuning_slice=slice(1, 4)).fit(winner_data)
        # candidates for a cluster-0 instance
        X = np.array(
            [
                [0.0, 0.2, 0.2, 0.2],  # near the cluster-0 winner
                [0.0, 0.8, 0.8, 0.8],  # near the cluster-1 winner
            ]
        )
        scores = clf.decision_function(X)
        assert scores[0] > scores[1]

    def test_rank_best_first(self, winner_data):
        clf = VariantClassifier(num_classes=4, tuning_slice=slice(1, 4)).fit(winner_data)
        X = np.column_stack(
            [np.zeros(20), np.linspace(0, 1, 20), np.linspace(0, 1, 20), np.linspace(0, 1, 20)]
        )
        best = clf.rank(X)[0]
        assert np.linalg.norm(X[best, 1:] - 0.2) < 0.2

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            VariantClassifier().decision_function(np.zeros((2, 3)))

    def test_codebook_capped(self, winner_data):
        clf = VariantClassifier(num_classes=1, tuning_slice=slice(1, 4)).fit(winner_data)
        assert clf.codebook_.shape[0] == 1
