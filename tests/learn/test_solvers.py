"""Tests for the pairwise RankSVM solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn.solvers import (
    pairwise_hinge_loss,
    solve_lbfgs,
    solve_sgd,
)


def _separable_problem(n=60, d=4, seed=0):
    """Pairs perfectly ordered by feature 0."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    quality = X[:, 0]
    better, worse = [], []
    for i in range(n):
        for j in range(n):
            if quality[i] > quality[j] + 0.05:
                better.append(i)
                worse.append(j)
    return X, np.array(better), np.array(worse)


class TestLbfgs:
    def test_learns_separable_direction(self):
        X, better, worse = _separable_problem()
        res = solve_lbfgs(X, better, worse, C=10.0)
        scores = X @ res.w
        violations = (scores[better] <= scores[worse]).mean()
        assert violations < 0.02
        assert res.w[0] > 0

    def test_objective_decreases_from_zero(self):
        X, better, worse = _separable_problem()
        res = solve_lbfgs(X, better, worse, C=10.0)
        at_zero = pairwise_hinge_loss(np.zeros(X.shape[1]), X, better, worse, 10.0)
        assert res.objective < at_zero

    def test_regularization_shrinks_weights(self):
        X, better, worse = _separable_problem()
        strong = solve_lbfgs(X, better, worse, C=0.001)
        weak = solve_lbfgs(X, better, worse, C=100.0)
        assert np.linalg.norm(strong.w) < np.linalg.norm(weak.w)

    def test_warm_start(self):
        X, better, worse = _separable_problem()
        first = solve_lbfgs(X, better, worse, C=10.0)
        warm = solve_lbfgs(X, better, worse, C=10.0, w0=first.w)
        assert warm.iterations <= first.iterations

    def test_input_validation(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError, match="no preference pairs"):
            solve_lbfgs(X, np.array([], dtype=int), np.array([], dtype=int), 1.0)
        with pytest.raises(IndexError):
            solve_lbfgs(X, np.array([9]), np.array([0]), 1.0)
        with pytest.raises(ValueError):
            solve_lbfgs(np.zeros(4), np.array([0]), np.array([1]), 1.0)

    def test_gradient_matches_finite_difference(self):
        from repro.learn.solvers import _objective_and_grad

        X, better, worse = _separable_problem(n=25, seed=3)
        rng = np.random.default_rng(4)
        w = rng.normal(size=X.shape[1]) * 0.5
        obj, grad = _objective_and_grad(w, X, better, worse, 5.0, 1.0)
        eps = 1e-6
        for k in range(X.shape[1]):
            wp = w.copy()
            wp[k] += eps
            op, _ = _objective_and_grad(wp, X, better, worse, 5.0, 1.0)
            fd = (op - obj) / eps
            assert grad[k] == pytest.approx(fd, rel=1e-3, abs=1e-5)


class TestSgd:
    def test_learns_separable_direction(self):
        X, better, worse = _separable_problem(seed=1)
        res = solve_sgd(X, better, worse, C=200.0, epochs=60, rng=0)
        scores = X @ res.w
        assert (scores[better] > scores[worse]).mean() > 0.95

    def test_deterministic_given_seed(self):
        X, better, worse = _separable_problem(seed=2)
        a = solve_sgd(X, better, worse, C=10.0, rng=5)
        b = solve_sgd(X, better, worse, C=10.0, rng=5)
        assert np.array_equal(a.w, b.w)

    def test_agrees_with_lbfgs_on_ranking(self):
        """Both solvers must induce (nearly) the same ordering."""
        X, better, worse = _separable_problem(seed=6)
        w1 = solve_lbfgs(X, better, worse, C=10.0).w
        w2 = solve_sgd(X, better, worse, C=10.0, epochs=80, rng=1).w
        from repro.ranking.kendall import kendall_tau

        assert kendall_tau(X @ w1, X @ w2) > 0.9


class TestLossFunction:
    def test_zero_weights_full_hinge(self):
        X, better, worse = _separable_problem(n=20)
        m = better.size
        loss = pairwise_hinge_loss(np.zeros(X.shape[1]), X, better, worse, C=2.0)
        assert loss == pytest.approx(2.0 / m * m)  # each pair contributes 1²

    @settings(max_examples=20)
    @given(st.floats(0.01, 100.0))
    def test_loss_nonnegative(self, C):
        X, better, worse = _separable_problem(n=15, seed=9)
        rng = np.random.default_rng(11)
        w = rng.normal(size=X.shape[1])
        assert pairwise_hinge_loss(w, X, better, worse, C) >= 0.0
