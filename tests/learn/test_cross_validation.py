"""Tests for grouped cross-validation and C selection."""

import numpy as np
import pytest

from repro.learn.ranksvm import RankSVMConfig
from repro.learn.validation import CVResult, cross_validate, grouped_kfold, select_c


class TestGroupedKfold:
    def test_groups_never_straddle(self):
        groups = np.repeat(np.arange(12), 5)
        for train, test in grouped_kfold(groups, k=4, seed=0):
            assert set(groups[train]).isdisjoint(groups[test])

    def test_every_group_tested_once(self):
        groups = np.repeat(np.arange(12), 5)
        tested: list[int] = []
        for _, test in grouped_kfold(groups, k=4, seed=0):
            tested.extend(np.unique(groups[test]).tolist())
        assert sorted(tested) == list(range(12))

    def test_partition_of_rows(self):
        groups = np.repeat(np.arange(8), 3)
        folds = grouped_kfold(groups, k=4, seed=1)
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(24))

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_kfold(np.array([0, 0, 1, 1]), k=1)
        with pytest.raises(ValueError, match="cannot make"):
            grouped_kfold(np.array([0, 0, 1, 1]), k=3)

    def test_deterministic(self):
        groups = np.repeat(np.arange(10), 4)
        a = grouped_kfold(groups, k=5, seed=3)
        b = grouped_kfold(groups, k=5, seed=3)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)


class TestCrossValidate:
    def test_learnable_data_positive_tau(self, synthetic_ranking_data):
        result = cross_validate(
            synthetic_ranking_data, RankSVMConfig(seed=0), k=3, seed=0
        )
        assert len(result.fold_taus) == 3
        assert result.mean_tau > 0.5

    def test_stats(self):
        r = CVResult(RankSVMConfig(), (0.4, 0.6))
        assert r.mean_tau == pytest.approx(0.5)
        assert r.std_tau == pytest.approx(0.1)


class TestSelectC:
    def test_returns_grid_member(self, synthetic_ranking_data):
        grid = (1e-3, 1e-1)
        best, results = select_c(synthetic_ranking_data, c_grid=grid, k=3)
        assert best.C in grid
        assert len(results) == len(grid)

    def test_prefers_smaller_c_on_tie(self, synthetic_ranking_data):
        """On easily separable data most C values tie — pick the smallest
        within one standard error."""
        best, results = select_c(
            synthetic_ranking_data, c_grid=(1e-2, 1e-1, 1.0), k=3
        )
        best_tau = max(r.mean_tau for r in results)
        tol = max(r.std_tau for r in results) / np.sqrt(3)
        eligible = [r.config.C for r in results if r.mean_tau >= best_tau - tol]
        assert best.C == min(eligible)
