"""SLO engine: objectives, windowed burn rates, and the alert state machine."""

from __future__ import annotations

import pytest

from repro.obs.audit import AuditJournal
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import DEFAULT_OBJECTIVES, SLOEngine, SLObjective, default_objectives


def _stats(requests, completed=None, degraded=0, hist=None):
    return {
        "requests_total": requests,
        "completed_total": requests if completed is None else completed,
        "degraded_total": degraded,
        "latency_hist": hist,
    }


class TestObjectives:
    def test_default_set_covers_all_kinds(self):
        kinds = {o.kind for o in DEFAULT_OBJECTIVES}
        assert kinds == {"latency_p99", "availability", "degraded_ratio", "quality"}

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLObjective("x", kind="throughput", target=1.0)
        with pytest.raises(ValueError, match="availability target"):
            SLObjective("x", kind="availability", target=1.5)
        with pytest.raises(ValueError, match="degraded_ratio target"):
            SLObjective("x", kind="degraded_ratio", target=1.0)
        with pytest.raises(ValueError, match="latency_p99 target"):
            SLObjective("x", kind="latency_p99", target=0.0)
        with pytest.raises(ValueError, match="warn_burn"):
            SLObjective("x", kind="availability", target=0.99,
                        warn_burn=2.0, breach_burn=1.0)

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="fast_window"):
            SLOEngine(fast_window=5, slow_window=3)
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([
                SLObjective("a", kind="availability", target=0.99),
                SLObjective("a", kind="quality", target=0.5),
            ])


class TestAvailability:
    def test_healthy_traffic_stays_ok(self):
        engine = SLOEngine(
            [SLObjective("avail", kind="availability", target=0.99)],
            fast_window=2, slow_window=4,
        )
        for tick in range(1, 6):
            out = engine.evaluate(_stats(100 * tick))
        assert out["avail"]["state"] == "ok"
        assert out["avail"]["burn_fast"] == 0.0

    def test_sustained_failures_breach(self):
        engine = SLOEngine(
            [SLObjective("avail", kind="availability", target=0.99)],
            fast_window=2, slow_window=4,
        )
        states = []
        completed = 0
        for tick in range(1, 9):
            completed += 90  # 10% of each tick's 100 requests fail
            out = engine.evaluate(_stats(100 * tick, completed=completed))
            states.append(out["avail"]["state"])
        assert states[-1] == "breach"
        # the engine records the transition trail deterministically
        assert [e["to"] for e in engine.events][-1] == "breach"

    def test_idle_window_holds_state(self):
        engine = SLOEngine(
            [SLObjective("avail", kind="availability", target=0.99)],
            fast_window=1, slow_window=2,
        )
        engine.evaluate(_stats(100))
        out = engine.evaluate(_stats(100))  # no new requests
        assert out["avail"]["value_fast"] is None
        assert out["avail"]["state"] == "ok"

    def test_recovery_retraces_to_ok(self):
        engine = SLOEngine(
            [SLObjective("avail", kind="availability", target=0.9,
                         warn_burn=1.0, breach_burn=1.5)],
            fast_window=1, slow_window=2,
        )
        engine.evaluate(_stats(100, completed=50))   # since-start: burning
        engine.evaluate(_stats(200, completed=100))  # still only 50% done
        assert engine.states()["avail"] != "ok"
        for requests in (300, 400, 500):
            out = engine.evaluate(_stats(requests, completed=requests - 50))
        assert out["avail"]["state"] == "ok"


class TestDegradedAndLatency:
    def test_degraded_ratio_breach(self):
        engine = SLOEngine(
            [SLObjective("deg", kind="degraded_ratio", target=0.05)],
            fast_window=2, slow_window=4,
        )
        degraded = 0
        for tick in range(1, 7):
            degraded += 20  # 20% degraded vs 5% budget: burn 4×
            out = engine.evaluate(_stats(100 * tick, degraded=degraded))
        assert out["deg"]["state"] == "breach"

    def test_latency_p99_from_hist_delta(self):
        engine = SLOEngine(
            [SLObjective("p99", kind="latency_p99", target=0.1)],
            fast_window=2, slow_window=4,
        )
        fast = Histogram()
        for _ in range(100):
            fast.observe(0.01)
        out = engine.evaluate(_stats(100, hist=fast.to_dict()))
        assert out["p99"]["state"] == "ok"
        # now 100 new slow observations: the windowed delta sees only them
        for _ in range(100):
            fast.observe(1.0)
        out = engine.evaluate(_stats(200, hist=fast.to_dict()))
        assert out["p99"]["value_fast"] > 0.5
        assert out["p99"]["state"] == "breach"

    def test_no_hist_is_none(self):
        engine = SLOEngine(
            [SLObjective("p99", kind="latency_p99", target=0.1)],
            fast_window=1, slow_window=2,
        )
        out = engine.evaluate(_stats(100))
        assert out["p99"]["value_fast"] is None
        assert out["p99"]["state"] == "ok"


class TestQualityObjective:
    def test_quality_breach_and_recovery(self):
        engine = SLOEngine(
            [SLObjective("q", kind="quality", target=0.6)],
            fast_window=2, slow_window=4,
        )
        for tau in (0.8, 0.8, 0.1, 0.1, 0.1, 0.1):
            out = engine.evaluate({}, quality_tau=tau)
        assert out["q"]["state"] == "breach"
        for tau in (0.9,) * 5:
            out = engine.evaluate({}, quality_tau=tau)
        assert out["q"]["state"] == "ok"

    def test_quality_none_holds_state(self):
        engine = SLOEngine(
            [SLObjective("q", kind="quality", target=0.6)],
            fast_window=1, slow_window=2,
        )
        engine.evaluate({}, quality_tau=0.9)
        out = engine.evaluate({})  # no quality signal this tick
        assert out["q"]["state"] == "ok"


class TestPlumbing:
    def test_transitions_counted_and_audited(self):
        metrics = MetricsRegistry()
        journal = AuditJournal()
        engine = SLOEngine(
            [SLObjective("avail", kind="availability", target=0.9)],
            metrics=metrics, audit=journal, fast_window=1, slow_window=2,
        )
        engine.evaluate(_stats(100, completed=10))  # since-start collapse
        assert metrics.counter("slo_transitions_total").value >= 1
        events = journal.events_of("slo-transition")
        assert events and events[-1]["attrs"]["objective"] == "avail"
        assert journal.verify() == len(events)
        assert metrics.gauge("slo_avail_state").value >= 1.0

    def test_state_table_renders(self):
        engine = SLOEngine(default_objectives(), fast_window=2, slow_window=4)
        evaluation = engine.evaluate(_stats(100))
        table = engine.state_table(evaluation)
        assert "availability" in table and "ok" in table

    def test_deterministic_replay(self):
        def run():
            engine = SLOEngine(
                [SLObjective("avail", kind="availability", target=0.99)],
                fast_window=2, slow_window=4,
            )
            completed = 0
            trail = []
            for tick in range(1, 9):
                completed += 90
                out = engine.evaluate(_stats(100 * tick, completed=completed))
                trail.append(out["avail"]["state"])
            return trail, engine.events

        assert run() == run()
