"""Benchmark ledger: rows, history IO, and the trailing-median sentinel."""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    append_row,
    check_regression,
    format_report,
    git_sha,
    ledger_row,
    read_history,
)


class TestRows:
    def test_row_shape(self):
        row = ledger_row("cluster", {"rps": 120.5}, extra={"n": 256})
        assert row["schema"] == LEDGER_SCHEMA_VERSION
        assert row["benchmark"] == "cluster"
        assert row["metrics"] == {"rps": 120.5}
        assert row["extra"] == {"n": 256}
        assert isinstance(row["cpu_count"], int) and row["cpu_count"] >= 1
        assert isinstance(row["git_sha"], str) and row["git_sha"]

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(TypeError, match="must be numeric"):
            ledger_row("cluster", {"rps": "fast"})
        with pytest.raises(TypeError, match="must be numeric"):
            ledger_row("cluster", {"ok": True})  # bools are not metrics

    def test_git_sha_in_checkout(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for rps in (100.0, 110.0):
            append_row(path, ledger_row("cluster", {"rps": rps}))
        rows = read_history(path)
        assert [r["metrics"]["rps"] for r in rows] == [100.0, 110.0]

    def test_read_history_skips_junk(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = ledger_row("cluster", {"rps": 100.0})
        path.write_text(
            "\n".join(
                [
                    json.dumps(good),
                    "",  # blank
                    "{not json",  # corrupt
                    json.dumps([1, 2]),  # not a dict
                    json.dumps({**good, "schema": LEDGER_SCHEMA_VERSION + 1}),
                ]
            )
            + "\n"
        )
        assert len(read_history(path)) == 1

    def test_read_missing_file(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []


def _history(benchmark, values, metric="latency_ms"):
    return [
        {"schema": 1, "benchmark": benchmark, "metrics": {metric: v}}
        for v in values
    ]


class TestSentinel:
    def test_flags_synthetic_2x_latency_inflation(self):
        """The acceptance case: a 2× p99 inflation against flat history."""
        history = _history("cluster", [10.0, 11.0, 10.5, 10.8, 11.2])
        report = check_regression(
            history, "cluster", {"latency_ms": 21.8},
            {"latency_ms": ("lower", 2.0)},
        )
        assert report["flagged"] == ["latency_ms"]
        assert not report["ok"]
        assert report["checks"]["latency_ms"]["verdict"] == "regressed"
        assert report["checks"]["latency_ms"]["median"] == 10.8

    def test_within_tolerance_passes(self):
        history = _history("cluster", [10.0, 11.0, 10.5])
        report = check_regression(
            history, "cluster", {"latency_ms": 15.0},
            {"latency_ms": ("lower", 2.0)},
        )
        assert report["ok"] and report["flagged"] == []

    def test_higher_direction_flags_collapse(self):
        history = _history("service", [10.0, 12.0, 11.0], metric="speedup")
        report = check_regression(
            history, "service", {"speedup": 4.0}, {"speedup": ("higher", 0.5)}
        )
        assert report["flagged"] == ["speedup"]
        ok = check_regression(
            history, "service", {"speedup": 9.0}, {"speedup": ("higher", 0.5)}
        )
        assert ok["ok"]

    def test_insufficient_history_never_flags(self):
        history = _history("cluster", [10.0, 11.0])  # < min_history
        report = check_regression(
            history, "cluster", {"latency_ms": 1000.0},
            {"latency_ms": ("lower", 2.0)},
        )
        assert report["ok"]
        assert report["checks"]["latency_ms"]["verdict"] == "insufficient-history"

    def test_other_benchmarks_do_not_pollute(self):
        history = _history("batch", [1.0, 1.0, 1.0]) + _history(
            "cluster", [10.0, 11.0, 10.5]
        )
        report = check_regression(
            history, "cluster", {"latency_ms": 15.0},
            {"latency_ms": ("lower", 2.0)},
        )
        assert report["n_history"] == 3
        assert report["ok"]

    def test_window_limits_lookback(self):
        # old terrible epoch, recent good epoch; window sees only the recent
        history = _history("cluster", [100.0] * 5 + [10.0, 10.5, 11.0])
        report = check_regression(
            history, "cluster", {"latency_ms": 12.0},
            {"latency_ms": ("lower", 2.0)}, window=3,
        )
        assert report["ok"]
        assert report["checks"]["latency_ms"]["median"] == 10.5

    def test_metric_missing_and_degenerate_median(self):
        history = _history("cluster", [0.0, 0.0, 0.0])
        report = check_regression(
            history, "cluster", {"other": 1.0},
            {"other": ("lower", 2.0), "latency_ms": ("lower", 2.0)},
        )
        assert report["checks"]["latency_ms"]["verdict"] == "metric-missing"
        degenerate = check_regression(
            history, "cluster", {"latency_ms": 5.0},
            {"latency_ms": ("lower", 2.0)},
        )
        assert degenerate["checks"]["latency_ms"]["verdict"] == "degenerate-median"
        assert degenerate["ok"]

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError, match="direction"):
            check_regression([], "cluster", {"x": 1.0}, {"x": ("sideways", 2.0)})

    def test_accepts_path_history(self, tmp_path):
        path = tmp_path / "history.jsonl"
        # distinct SHAs: in a real ledger each row is one commit's run, and
        # same-SHA rows deliberately collapse to a single sample
        for i, v in enumerate((10.0, 11.0, 10.5)):
            append_row(
                path, {**ledger_row("cluster", {"latency_ms": v}), "git_sha": f"c{i}"}
            )
        report = check_regression(
            path, "cluster", {"latency_ms": 50.0}, {"latency_ms": ("lower", 2.0)}
        )
        assert report["flagged"] == ["latency_ms"]

    def test_degenerate_window_duplicate_sha_collapses(self):
        """--chaos double-runs append twice per commit; the window must see
        one sample per commit, not two copies of each."""
        history = []
        for i, v in enumerate((10.0, 11.0, 10.5, 10.8)):
            for jitter in (0.0, 0.2):  # two appends per invocation
                history.append(
                    {
                        "schema": 1,
                        "benchmark": "cluster",
                        "git_sha": f"commit{i}",
                        "metrics": {"latency_ms": v + jitter},
                    }
                )
        report = check_regression(
            history, "cluster", {"latency_ms": 50.0},
            {"latency_ms": ("lower", 2.0)}, window=4,
        )
        # 8 raw rows collapse to 4 commit medians; the window holds all
        # commits instead of the most recent two commits twice over
        assert report["n_history"] == 4
        assert report["checks"]["latency_ms"]["n_samples"] == 4
        assert report["checks"]["latency_ms"]["median"] == pytest.approx(10.75)
        assert report["flagged"] == ["latency_ms"]

    def test_degenerate_window_current_sha_excluded(self):
        """Rows this driver already appended for the current commit must not
        let the sentinel compare the run against itself."""
        history = _history("cluster", [10.0, 11.0, 10.5])
        for i, row in enumerate(history):
            row["git_sha"] = f"older{i}"
        # the current commit already wrote two wildly-slow rows (chaos re-run)
        for v in (100.0, 101.0):
            history.append(
                {
                    "schema": 1,
                    "benchmark": "cluster",
                    "git_sha": "me",
                    "metrics": {"latency_ms": v},
                }
            )
        polluted = check_regression(
            history, "cluster", {"latency_ms": 100.0},
            {"latency_ms": ("lower", 2.0)}, window=3,
        )
        clean = check_regression(
            history, "cluster", {"latency_ms": 100.0},
            {"latency_ms": ("lower", 2.0)}, window=3, current_sha="me",
        )
        # without the guard the commit's own rows dilute the window median;
        # with it the 10× inflation is judged purely against prior commits
        assert clean["checks"]["latency_ms"]["median"] == pytest.approx(10.5)
        assert clean["flagged"] == ["latency_ms"]
        assert polluted["checks"]["latency_ms"]["median"] > clean["checks"][
            "latency_ms"
        ]["median"]

    def test_degenerate_window_all_rows_current_sha(self):
        """A fresh ledger seeded only by this commit's own runs cannot flag:
        exclusion leaves <3 samples -> insufficient-history."""
        history = _history("cluster", [10.0, 10.2, 10.1, 10.3])
        for row in history:
            row["git_sha"] = "me"
        report = check_regression(
            history, "cluster", {"latency_ms": 1000.0},
            {"latency_ms": ("lower", 2.0)}, current_sha="me",
        )
        assert report["ok"]
        assert report["n_history"] == 0
        assert report["checks"]["latency_ms"]["verdict"] == "insufficient-history"

    def test_unknown_sha_rows_never_collapse(self):
        """Runs outside a checkout can't be proven same-build: keep each."""
        history = _history("cluster", [10.0, 11.0, 10.5])
        for row in history:
            row["git_sha"] = "unknown"
        report = check_regression(
            history, "cluster", {"latency_ms": 50.0},
            {"latency_ms": ("lower", 2.0)}, current_sha="unknown",
        )
        assert report["n_history"] == 3
        assert report["flagged"] == ["latency_ms"]

    def test_format_report_is_printable(self):
        history = _history("cluster", [10.0, 11.0, 10.5])
        report = check_regression(
            history, "cluster", {"latency_ms": 50.0, "absent": 1.0},
            {"latency_ms": ("lower", 2.0), "missing": ("higher", 0.5)},
        )
        text = format_report(report)
        assert "REGRESSED: latency_ms" in text
        assert "missing: metric-missing" in text
