"""QualityWatch: rolling τ gauges, promotion outcomes, regression alerts."""

from __future__ import annotations

import pytest

from repro.obs.audit import AuditJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import QualityWatch


class FB:
    """Stand-in for MeasuredFeedback: family + tau + model_version."""

    def __init__(self, family, tau, version="v0001"):
        self.family, self.tau, self.model_version = family, tau, version


class TestGauges:
    def test_empty_watch(self):
        watch = QualityWatch()
        assert watch.overall_tau() == 0.0
        assert watch.family_tau("line") == 0.0
        assert watch.family_taus() == {}
        assert watch.realized_tau() is None

    def test_overall_and_family_windows(self):
        watch = QualityWatch(window=4)
        for tau in (0.8, 0.6):
            watch.observe(FB("line", tau))
        watch.observe(FB("laplacian", 0.4))
        assert watch.overall_tau() == pytest.approx(0.6)
        assert watch.family_tau("line") == pytest.approx(0.7)
        assert watch.family_taus() == {
            "laplacian": pytest.approx(0.4),
            "line": pytest.approx(0.7),
        }

    def test_window_ages_out(self):
        watch = QualityWatch(window=2)
        for tau in (0.0, 0.9, 0.9):
            watch.observe(FB("line", tau))
        assert watch.overall_tau() == pytest.approx(0.9)

    def test_gauges_published_to_registry(self):
        metrics = MetricsRegistry()
        watch = QualityWatch(metrics, window=4)
        watch.observe(FB("line", 0.5))
        watch.observe(FB("line", 0.7))
        assert metrics.gauge("quality_online_tau").value == pytest.approx(0.6)
        assert metrics.gauge("quality_tau_line").value == pytest.approx(0.6)
        assert metrics.counter("quality_observations_total").value == 2
        text = metrics.exposition_text()
        assert "quality_online_tau" in text

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="window"):
            QualityWatch(window=0)
        with pytest.raises(ValueError, match="alert_margin"):
            QualityWatch(alert_margin=-0.1)


class TestPromotionOutcomes:
    def test_realized_tracking_only_for_promoted_version(self):
        watch = QualityWatch(window=8)
        watch.note_promotion("v0002", shadow_tau=0.8, production_tau=0.6)
        watch.observe(FB("line", 0.9, "v0002"))
        watch.observe(FB("line", 0.1, "v0001"))  # stale model: not judged
        assert watch.realized_tau("v0002") == pytest.approx(0.9)
        outcome = watch.outcomes()[-1]
        assert outcome["n_records"] == 1
        assert outcome["gap"] == pytest.approx(0.1)
        assert not outcome["alerted"]

    def test_shadow_and_realized_gauges(self):
        metrics = MetricsRegistry()
        watch = QualityWatch(metrics, window=8)
        watch.note_promotion("v0002", shadow_tau=0.8)
        watch.observe(FB("line", 0.7, "v0002"))
        assert metrics.gauge("quality_shadow_tau").value == pytest.approx(0.8)
        assert metrics.gauge("quality_realized_tau").value == pytest.approx(0.7)

    def test_outcomes_bounded(self):
        watch = QualityWatch(max_outcomes=3)
        for i in range(6):
            watch.note_promotion(f"v{i:04d}", shadow_tau=0.5)
        outcomes = watch.outcomes()
        assert len(outcomes) == 3
        assert outcomes[-1]["version"] == "v0005"

    def test_snapshot_shape(self):
        watch = QualityWatch(window=4)
        watch.note_promotion("v0002", shadow_tau=0.8)
        watch.observe(FB("line", 0.7, "v0002"))
        snap = watch.snapshot()
        assert snap["observations"] == 1
        assert snap["overall_tau"] == pytest.approx(0.7)
        assert snap["outcomes"][-1]["version"] == "v0002"
        assert snap["alerts"] == []


class TestRegressionAlerts:
    def _drop(self, watch, n=6, tau=0.1, version="v0002"):
        for _ in range(n):
            watch.observe(FB("line", tau, version))

    def test_alert_fires_once_below_floor(self):
        metrics = MetricsRegistry()
        watch = QualityWatch(
            metrics, window=16, alert_margin=0.1, min_outcome_records=4
        )
        watch.note_promotion("v0002", shadow_tau=0.8)
        self._drop(watch, n=10)
        assert len(watch.alerts) == 1
        alert = watch.alerts[0]
        assert alert["version"] == "v0002"
        assert alert["realized_tau"] < alert["floor"] == pytest.approx(0.7)
        assert metrics.counter("quality_regression_alerts_total").value == 1

    def test_no_alert_before_min_records(self):
        watch = QualityWatch(window=16, alert_margin=0.1, min_outcome_records=8)
        watch.note_promotion("v0002", shadow_tau=0.8)
        self._drop(watch, n=7)
        assert watch.alerts == []

    def test_no_alert_when_realized_holds(self):
        watch = QualityWatch(window=16, alert_margin=0.1, min_outcome_records=4)
        watch.note_promotion("v0002", shadow_tau=0.8)
        self._drop(watch, n=10, tau=0.75)  # above 0.8 - 0.1
        assert watch.alerts == []

    def test_alert_lands_in_audit_journal(self):
        journal = AuditJournal()
        watch = QualityWatch(
            window=16, alert_margin=0.1, min_outcome_records=4, audit=journal
        )
        watch.note_promotion("v0002", shadow_tau=0.8)
        self._drop(watch, n=6)
        events = journal.events_of("quality-regression")
        assert len(events) == 1
        assert events[0]["attrs"]["version"] == "v0002"
        assert journal.verify() == 1

    def test_deterministic_fold(self):
        """Same stream in, same gauges/outcomes/alerts out."""

        def run():
            watch = QualityWatch(
                window=8, alert_margin=0.1, min_outcome_records=4
            )
            watch.note_promotion("v0002", shadow_tau=0.8)
            for tau in (0.9, 0.85, 0.2, 0.1, 0.15, 0.1):
                watch.observe(FB("line", tau, "v0002"))
            return watch.snapshot()

        assert run() == run()
