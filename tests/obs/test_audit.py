"""Audit journal: chain integrity, tamper detection, replay, persistence."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.audit import GENESIS, AuditJournal, verify_entries


class TestChain:
    def test_empty_journal_verifies(self):
        journal = AuditJournal()
        assert journal.verify() == 0
        assert len(journal) == 0

    def test_first_entry_chains_from_genesis(self):
        journal = AuditJournal()
        entry = journal.record("promote", {"version": "v0002"})
        assert entry["seq"] == 0
        assert entry["prev"] == GENESIS
        assert journal.verify() == 1

    def test_chain_links_and_counts(self):
        journal = AuditJournal()
        for i in range(10):
            journal.record("answer", {"req_id": i, "model_version": "v0001"})
        entries = journal.entries()
        assert [e["seq"] for e in entries] == list(range(10))
        for prev, entry in zip(entries, entries[1:]):
            assert entry["prev"] == prev["checksum"]
        assert journal.verify() == 10

    def test_edited_payload_breaks_chain(self):
        journal = AuditJournal()
        journal.record("promote", {"version": "v0002"})
        journal.record("rollback", {"restored": "v0001"})
        entries = journal.entries()
        entries[0]["attrs"]["version"] = "v0666"
        with pytest.raises(ValueError, match="audit chain broken at entry 0"):
            verify_entries(entries)

    def test_dropped_entry_breaks_chain(self):
        journal = AuditJournal()
        for i in range(4):
            journal.record("answer", {"req_id": i})
        entries = journal.entries()
        del entries[1]
        with pytest.raises(ValueError, match="audit chain broken at entry 1"):
            verify_entries(entries)

    def test_reordered_entries_break_chain(self):
        journal = AuditJournal()
        for i in range(4):
            journal.record("answer", {"req_id": i})
        entries = journal.entries()
        entries[1], entries[2] = entries[2], entries[1]
        with pytest.raises(ValueError, match="audit chain broken"):
            verify_entries(entries)

    def test_determinism_no_wall_clock(self):
        """Same events in, byte-identical journal out — twice."""

        def build():
            journal = AuditJournal()
            journal.record("spawn", {"worker": 0, "restarts": 0})
            journal.record("answer", {"req_id": 1, "model_version": "v0001"},
                           trace_ids=("t1",))
            journal.record("quarantine", {"worker": 0, "reason": "timeout"})
            return journal.entries()

        assert build() == build()

    def test_trace_ids_sorted_and_filtered(self):
        journal = AuditJournal()
        entry = journal.record("shed", {}, trace_ids=("b", "", "a"))
        assert entry["trace_ids"] == ["a", "b"]


class TestReplay:
    def test_answers_keyed_by_req_id(self):
        journal = AuditJournal()
        journal.record("answer", {"req_id": 3, "model_version": "v0001",
                                  "worker": 0, "why": "routed"})
        journal.record("answer", {"req_id": 4, "model_version": "v0001",
                                  "worker": 1, "why": "degraded-scored",
                                  "degraded": True})
        replay = AuditJournal.replay(journal.entries())
        assert replay["answers"][3]["why"] == "routed"
        assert replay["answers"][4]["degraded"] is True
        assert replay["counts"]["answer"] == 2

    def test_replay_is_order_independent(self):
        """Scheduler-permuted interleavings reconstruct identically."""
        a = [
            {"event": "answer", "attrs": {"req_id": 1, "model_version": "v1"}},
            {"event": "answer", "attrs": {"req_id": 2, "model_version": "v1"}},
        ]
        assert AuditJournal.replay(a) == AuditJournal.replay(list(reversed(a)))

    def test_promote_rollback_move_serving_tag(self):
        journal = AuditJournal()
        journal.record("promote", {"version": "v0002"})
        replay = AuditJournal.replay(journal.entries())
        assert replay["tags"]["__serving__"] == "v0002"
        journal.record("rollback", {"restored": "v0001"})
        replay = AuditJournal.replay(journal.entries())
        assert replay["tags"]["__serving__"] == "v0001"
        assert len(replay["promotions"]) == len(replay["rollbacks"]) == 1

    def test_fleet_event_buckets(self):
        journal = AuditJournal()
        journal.record("quarantine", {"worker": 2, "reason": "crash"})
        journal.record("readmit", {"worker": 2})
        journal.record("worker-exit", {"worker": 2, "requeued": 0})
        replay = AuditJournal.replay(journal.entries())
        assert replay["quarantines"] == [{"worker": 2, "reason": "crash"}]
        assert replay["readmissions"] == [{"worker": 2}]
        assert replay["worker_exits"] == [{"worker": 2, "requeued": 0}]

    def test_tag_events_track_final_position(self):
        journal = AuditJournal()
        journal.record("tag", {"tag": "prod", "version": "v0001"})
        journal.record("tag", {"tag": "prod", "version": "v0002"})
        assert AuditJournal.replay(journal.entries())["tags"]["prod"] == "v0002"


class TestPersistence:
    def test_write_load_roundtrip(self, tmp_path):
        journal = AuditJournal()
        journal.record("promote", {"version": "v0002"})
        journal.record("answer", {"req_id": 1, "model_version": "v0002"})
        path = tmp_path / "audit.jsonl"
        assert journal.write(path) == 2
        loaded = AuditJournal.load(path)
        assert loaded.entries() == journal.entries()
        assert loaded.verify() == 2

    def test_load_rejects_tampered_file(self, tmp_path):
        journal = AuditJournal()
        journal.record("promote", {"version": "v0002"})
        path = tmp_path / "audit.jsonl"
        journal.write(path)
        entry = json.loads(path.read_text())
        entry["attrs"]["version"] = "v0666"
        path.write_text(json.dumps(entry, sort_keys=True) + "\n")
        with pytest.raises(ValueError, match="audit chain broken"):
            AuditJournal.load(path)

    def test_streaming_file_matches_memory(self, tmp_path):
        path = tmp_path / "live.jsonl"
        journal = AuditJournal(path)
        for i in range(5):
            journal.record("answer", {"req_id": i})
        on_disk = [json.loads(line) for line in path.read_text().splitlines()]
        assert on_disk == journal.entries()
        assert AuditJournal.load(path).verify() == 5

    def test_loaded_journal_can_keep_appending(self, tmp_path):
        journal = AuditJournal()
        journal.record("promote", {"version": "v0002"})
        path = tmp_path / "audit.jsonl"
        journal.write(path)
        resumed = AuditJournal.load(path)
        resumed.record("rollback", {"restored": "v0001"})
        assert resumed.verify() == 2


class TestWiring:
    def test_attach_registry_audits_tag_moves(self, tmp_path):
        import numpy as np

        from repro.learn.ranksvm import RankSVM
        from repro.service.registry import ModelRegistry

        model = RankSVM()
        model.w_ = np.zeros(4)
        model.num_pairs_ = 0
        registry = ModelRegistry(tmp_path)
        journal = AuditJournal().attach_registry(registry)
        version = registry.publish(model, "fp", tags=("prod",))
        tag_events = journal.events_of("tag")
        assert {"tag": "prod", "version": version} in [
            e["attrs"] for e in tag_events
        ]
        assert AuditJournal.replay(journal.entries())["tags"]["prod"] == version

    def test_concurrent_appends_keep_chain_intact(self):
        journal = AuditJournal()

        def spam(worker):
            for i in range(50):
                journal.record("answer", {"req_id": worker * 1000 + i})

        threads = [threading.Thread(target=spam, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert journal.verify() == 200
        replay = AuditJournal.replay(journal.entries())
        assert len(replay["answers"]) == 200

    def test_events_of_and_tail(self):
        journal = AuditJournal()
        for i in range(5):
            journal.record("answer", {"req_id": i})
        journal.record("promote", {"version": "v0002"})
        assert [e["attrs"]["version"] for e in journal.events_of("promote")] == [
            "v0002"
        ]
        assert [e["seq"] for e in journal.tail(2)] == [4, 5]
