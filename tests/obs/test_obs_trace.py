"""Unit tests for the tracing primitives (no cluster involved).

The live end-to-end behavior is pinned in ``tests/cluster/test_tracing.py``;
here we pin the pure parts: deterministic ids and sampling, span math,
ring-buffer bounds, the JSONL sink, and the attribution arithmetic of
``stage_breakdown`` on hand-built span sets.
"""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    ROOT_SPAN,
    Span,
    SpanRecorder,
    TraceConfig,
    TraceContext,
    Tracer,
    read_jsonl,
    sample_request,
    stage_breakdown,
    trace_id_for,
    write_jsonl,
)


class TestSamplingDeterminism:
    def test_trace_id_is_pure_16_hex(self):
        assert trace_id_for(42) == trace_id_for(42)
        assert trace_id_for(42) != trace_id_for(43)
        assert len(trace_id_for(1)) == 16
        int(trace_id_for(1), 16)  # valid hex

    def test_rate_extremes_short_circuit(self):
        assert all(sample_request(i, 1.0) for i in range(100))
        assert not any(sample_request(i, 0.0) for i in range(100))

    def test_rate_half_traces_roughly_half(self):
        n = 2000
        traced = sum(sample_request(i, 0.5) for i in range(n))
        assert 0.4 * n < traced < 0.6 * n

    def test_sampling_monotone_in_rate(self):
        """A request traced at rate r stays traced at every higher rate."""
        for req_id in range(200):
            decisions = [
                sample_request(req_id, r) for r in (0.1, 0.3, 0.5, 0.9, 1.0)
            ]
            assert decisions == sorted(decisions)

    def test_config_validated(self):
        with pytest.raises(ValueError, match="sample_rate"):
            TraceConfig(sample_rate=1.5)
        with pytest.raises(ValueError, match="ring_size"):
            TraceConfig(ring_size=0)


class TestTracer:
    def test_context_iff_sampled(self):
        tracer = Tracer(TraceConfig(sample_rate=0.5))
        for req_id in range(1, 50):
            ctx = tracer.context_for(req_id)
            if sample_request(req_id, 0.5):
                assert ctx == TraceContext(trace_id_for(req_id), req_id)
            else:
                assert ctx is None

    def test_span_clamps_negative_cross_process_skew(self):
        tracer = Tracer(process="coordinator")
        ctx = tracer.context_for(1)
        span = tracer.span(ctx, "worker-ingress", 10.0, 9.5)
        assert span.duration_s == 0.0
        assert span.end_s == span.start_s == 10.0
        assert tracer.spans() == [span]

    def test_record_event_is_zero_width_and_unkeyed(self):
        tracer = Tracer(process="coordinator")
        tracer.record_event("shed", attrs={"depth": 9})
        (event,) = tracer.spans()
        assert event.trace_id == ""
        assert event.name == "event:shed"
        assert event.duration_s == 0.0
        assert event.attrs == {"depth": 9}

    def test_ring_keeps_newest_and_counts_drops(self):
        rec = SpanRecorder(ring_size=3)
        spans = [
            Span("t", f"s{i}", float(i), 0.1, "p", req_id=i) for i in range(5)
        ]
        rec.record_many(spans)
        assert [s.name for s in rec.spans()] == ["s2", "s3", "s4"]
        assert rec.recorded == 5 and rec.dropped == 2
        assert rec.drain() == spans[2:]
        assert len(rec) == 0


class TestJsonlSink:
    def test_round_trip_preserves_everything(self, tmp_path):
        spans = [
            Span("aa", "encode", 1.0, 0.25, "worker-0", 7, {"rows": 128}),
            Span("", "event:shed", 2.0, 0.0, "coordinator"),
        ]
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(path, spans) == 2
        assert read_jsonl(path) == spans

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        span = Span("aa", "score", 0.0, 0.1, "service")
        write_jsonl(path, [span])
        path.write_text(path.read_text() + "\n\n")
        assert read_jsonl(path) == [span]


def _trace(trace_id, wall, stages, t0=100.0):
    """A hand-built trace: a root span + sequential named stage spans."""
    spans = [Span(trace_id, ROOT_SPAN, t0, wall, "coordinator", req_id=1)]
    t = t0
    for name, dur in stages:
        spans.append(Span(trace_id, name, t, dur, "worker-0", req_id=1))
        t += dur
    return spans


class TestStageBreakdown:
    def test_full_coverage_partition(self):
        spans = _trace("a", 1.0, [("dispatch", 0.2), ("encode", 0.8)])
        report = stage_breakdown(spans)
        assert report["n_traces"] == 1
        assert report["wall_total_s"] == pytest.approx(1.0)
        assert report["coverage_mean"] == pytest.approx(1.0)
        assert report["stages"]["dispatch"]["fraction"] == pytest.approx(0.2)
        assert report["stages"]["encode"]["mean_ms"] == pytest.approx(800.0)

    def test_missing_instrumentation_shows_as_low_coverage(self):
        spans = _trace("a", 1.0, [("dispatch", 0.5)])  # half unaccounted
        report = stage_breakdown(spans)
        assert report["coverage_mean"] == pytest.approx(0.5)

    def test_aggregates_across_traces_and_ignores_events(self):
        spans = (
            _trace("a", 1.0, [("encode", 1.0)])
            + _trace("b", 3.0, [("encode", 3.0)], t0=200.0)
            + [Span("", "event:shed", 0.0, 0.0, "coordinator")]
        )
        report = stage_breakdown(spans)
        assert report["n_traces"] == 2
        assert report["coverage_min"] == pytest.approx(1.0)
        enc = report["stages"]["encode"]
        assert enc["count"] == 2
        assert enc["total_s"] == pytest.approx(4.0)
        assert enc["mean_ms"] == pytest.approx(2000.0)
        assert enc["fraction"] == pytest.approx(1.0)

    def test_rootless_trace_skipped_and_empty_input(self):
        orphan = [Span("x", "encode", 0.0, 1.0, "worker-0")]
        report = stage_breakdown(orphan)
        assert report["n_traces"] == 0
        assert report["stages"] == {}
        assert stage_breakdown([])["coverage_mean"] == 0.0

    def test_zero_width_root_counts_as_covered(self):
        spans = [Span("a", ROOT_SPAN, 0.0, 0.0, "coordinator", req_id=1)]
        assert stage_breakdown(spans)["coverage_mean"] == pytest.approx(1.0)
