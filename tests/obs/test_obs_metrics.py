"""Unit tests for the mergeable metrics layer (counters/gauges/histograms).

The load-bearing property is *exact merge*: percentiles read from a merged
histogram must match percentiles read from one histogram that saw every
observation — bucketing is a pure function of the value, so summing
per-bucket counts loses nothing.  The rest pins the error bound (one
bucket width vs numpy's exact percentile), the wire round-trip, the
registry's named-instrument semantics, and the Prometheus exposition
format.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    merge_histograms,
    percentile_from_hist,
)


class TestCounterGauge:
    def test_counter_sums_and_rejects_negative(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="only increase"):
            c.inc(-1)

    def test_gauge_holds_last_value(self):
        g = Gauge("drift_tau")
        g.set(0.62)
        g.set(0.58)
        assert g.value == pytest.approx(0.58)


class TestHistogramBuckets:
    def test_bucket_index_deterministic_and_monotone(self):
        h = Histogram()
        values = np.geomspace(1e-5, 100.0, 500)
        indices = [h.bucket_index(float(v)) for v in values]
        assert indices == sorted(indices)
        assert indices[0] == 0
        assert indices[-1] <= h.n_buckets

    def test_boundary_value_lands_in_its_own_bucket(self):
        h = Histogram()
        for i in range(h.n_buckets):
            bound = h.lowest * h.growth**i
            assert h.bucket_index(bound) <= i, f"bound {i} escaped upward"
            lower, upper = h.bucket_bounds(h.bucket_index(bound))
            assert lower < bound <= upper or (i == 0 and bound <= upper)

    def test_overflow_bucket_catches_huge_values(self):
        h = Histogram(lowest=1e-3, growth=2.0, buckets=4)
        h.observe(1e9)
        assert h.counts[h.n_buckets] == 1
        lower, upper = h.bucket_bounds(h.n_buckets)
        assert upper == pytest.approx(lower * h.growth)

    def test_negative_and_zero_clamp_into_bucket_zero(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-1.0)
        assert h.counts[0] == 2 and h.count == 2

    def test_config_validated(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram(buckets=0)


class TestHistogramMerge:
    def test_merge_is_exact_vs_single_observer(self):
        """The headline property: merged == one histogram that saw it all."""
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-5.0, sigma=1.5, size=900)
        parts = [Histogram() for _ in range(3)]
        whole = Histogram()
        for i, v in enumerate(samples):
            parts[i % 3].observe(float(v))
            whole.observe(float(v))
        merged = merge_histograms([p.to_dict() for p in parts])
        assert merged["counts"] == whole.to_dict()["counts"]
        assert merged["count"] == whole.count == len(samples)
        assert merged["sum"] == pytest.approx(whole.sum)
        for q in (1, 50, 90, 99):
            assert percentile_from_hist(merged, q) == whole.percentile(q)

    def test_merge_rejects_mismatched_configs_and_empty(self):
        a = Histogram().to_dict()
        b = Histogram(growth=2.0).to_dict()
        with pytest.raises(ValueError, match="configs differ"):
            merge_histograms([a, b])
        with pytest.raises(ValueError, match="nothing"):
            merge_histograms([])

    def test_merge_is_order_free(self):
        hs = []
        for seed in range(4):
            h = Histogram()
            rng = np.random.default_rng(seed)
            for v in rng.exponential(0.01, size=50):
                h.observe(float(v))
            hs.append(h.to_dict())
        forward = merge_histograms(hs)
        backward = merge_histograms(hs[::-1])
        assert forward == backward

    def test_round_trip_through_dict(self):
        h = Histogram()
        for v in (0.0002, 0.01, 3.0):
            h.observe(v)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.to_dict() == h.to_dict()
        clone.observe(0.01)
        assert clone.count == h.count + 1

    def test_in_place_merge_matches_function(self):
        a, b = Histogram(), Histogram()
        a.observe(0.001)
        b.observe(0.5)
        expected = merge_histograms([a.to_dict(), b.to_dict()])
        a.merge(b)
        assert a.to_dict() == expected


class TestPercentileAccuracy:
    def test_within_one_bucket_width_of_numpy(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=2000)
        h = Histogram()
        for v in samples:
            h.observe(float(v))
        for q in (10, 50, 90, 99):
            exact = float(np.percentile(samples, q))
            est = h.percentile(q)
            lower, upper = h.bucket_bounds(h.bucket_index(exact))
            assert abs(est - exact) <= (upper - lower), f"p{q} off by a bucket"

    def test_empty_and_degenerate(self):
        h = Histogram()
        assert h.percentile(50) == 0.0
        h.observe(0.005)
        lower, upper = h.bucket_bounds(h.bucket_index(0.005))
        for q in (0, 50, 100):
            assert lower <= h.percentile(q) <= upper

    def test_q_out_of_range_rejected(self):
        h = Histogram()
        h.observe(0.01)
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(101)

    def test_percentile_monotone_in_q(self):
        h = Histogram()
        rng = np.random.default_rng(3)
        for v in rng.exponential(0.02, size=300):
            h.observe(float(v))
        qs = list(range(0, 101, 5))
        vals = [h.percentile(q) for q in qs]
        assert vals == sorted(vals)


class TestPercentileEdgeCases:
    """percentile_from_hist on empty / single-bucket / saturated shapes."""

    def test_empty_hist_dict_is_zero_for_any_q(self):
        empty = Histogram().to_dict()
        for q in (0, 50, 99, 100):
            assert percentile_from_hist(empty, q) == 0.0
        # count==0 short-circuits before q validation, by design
        assert percentile_from_hist(empty, 500) == 0.0

    def test_single_bucket_all_percentiles_inside_it(self):
        h = Histogram()
        for _ in range(1000):
            h.observe(0.01)  # every observation in one bucket
        d = h.to_dict()
        lower, upper = h.bucket_bounds(h.bucket_index(0.01))
        for q in (0, 1, 50, 99, 100):
            assert lower <= percentile_from_hist(d, q) <= upper

    def test_saturated_overflow_bucket(self):
        """Observations far beyond the top bound all land in the overflow
        bucket; percentiles must stay finite and equal its lower bound+."""
        h = Histogram(lowest=1e-4, buckets=8)
        for _ in range(100):
            h.observe(1e9)
        d = h.to_dict()
        p50 = percentile_from_hist(d, 50)
        p99 = percentile_from_hist(d, 99)
        assert np.isfinite(p50) and np.isfinite(p99)
        assert p99 >= p50 > 0.0
        overflow_lower, _ = h.bucket_bounds(len(h.counts) - 1)
        assert p50 >= overflow_lower

    def test_q_validation_when_nonempty(self):
        h = Histogram()
        h.observe(0.01)
        d = h.to_dict()
        with pytest.raises(ValueError, match="percentile"):
            percentile_from_hist(d, -1)
        with pytest.raises(ValueError, match="percentile"):
            percentile_from_hist(d, 100.5)


class TestMergeLayoutMismatch:
    """Every axis of the bucket layout must match for an exact merge."""

    @pytest.mark.parametrize(
        "other",
        [
            dict(lowest=2e-4),
            dict(growth=2.0),
            dict(buckets=40),
        ],
        ids=["lowest", "growth", "buckets"],
    )
    def test_mismatched_layout_raises(self, other):
        a = Histogram()
        b = Histogram(**other)
        a.observe(0.01)
        b.observe(0.01)
        with pytest.raises(ValueError, match="configs differ"):
            merge_histograms([a.to_dict(), b.to_dict()])

    def test_in_place_merge_rejects_mismatch_without_corruption(self):
        a, b = Histogram(), Histogram(growth=2.0)
        a.observe(0.01)
        b.observe(0.5)
        before = a.to_dict()
        with pytest.raises(ValueError, match="configs differ"):
            a.merge(b)
        assert a.to_dict() == before  # failed merge left no partial state


class TestRegistryAndExposition:
    def test_named_instruments_are_singletons(self):
        reg = MetricsRegistry()
        c = reg.counter("retrains_total")
        c.inc(2)
        assert reg.counter("retrains_total") is c
        assert reg.snapshot()["retrains_total"] == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x_total")

    def test_snapshot_serializes_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("latency_s").observe(0.01)
        snap = reg.snapshot()
        assert snap["latency_s"]["count"] == 1

    def test_exposition_counter_gauge_histogram(self):
        reg = MetricsRegistry(prefix="svc")
        reg.counter("requests_total", help="served").inc(3)
        reg.gauge("queue_depth").set(2.5)
        reg.histogram("latency_s", buckets=4, lowest=1e-3, growth=2.0).observe(
            0.0015
        )
        text = reg.exposition_text()
        assert "# TYPE svc_requests_total counter" in text
        assert "svc_requests_total 3" in text
        assert "# HELP svc_requests_total served" in text
        assert "# TYPE svc_queue_depth gauge" in text
        assert "svc_queue_depth 2.5" in text
        assert "# TYPE svc_latency_s histogram" in text
        assert 'svc_latency_s_bucket{le="+Inf"} 1' in text
        assert "svc_latency_s_count 1" in text

    def test_exposition_bucket_counts_are_cumulative(self):
        h = Histogram(lowest=1e-3, growth=2.0, buckets=3)
        for v in (0.0005, 0.0015, 0.003, 99.0):
            h.observe(v)
        text = exposition({"lat": h.to_dict()}, prefix="")
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "_bucket" in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_exposition_skips_non_numeric_and_accepts_merged_stats(self):
        text = exposition(
            {
                "requests_total": 4,
                "cache_hit_rate": 0.5,
                "faults": "worker 0 killed",
                "degraded": True,
                "worker_events": [{"kind": "exit"}],
            }
        )
        assert "repro_requests_total 4" in text
        assert "repro_cache_hit_rate 0.5" in text
        assert "faults" not in text
        assert "degraded" not in text
        assert "worker_events" not in text
