"""Integration tests pinning the paper's qualitative claims.

These are the "shape" assertions of the reproduction: who wins, roughly by
what factor, and where crossovers fall — evaluated end to end through the
real pipeline (training-set generation → RankSVM → candidate ranking →
simulated measurement), at reduced scale for test-suite runtime.
"""

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext
from repro.stencil.execution import StencilExecution
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates


@pytest.fixture(scope="module")
def ctx():
    ctx = ExperimentContext(seed=1)
    ctx.base_training_set(2600)
    return ctx


@pytest.fixture(scope="module")
def tuner(ctx):
    return ctx.tuner(2600)


class TestOrdinalRegressionVsSearch:
    """§VI-A: the model's top pick is close to GA-quality solutions."""

    @pytest.mark.parametrize(
        "label",
        ["laplacian-256x256x256", "tricubic-128x128x128", "blur-1024x768"],
    )
    def test_top_pick_within_2x_of_ga(self, ctx, tuner, label):
        inst = benchmark_by_id(label)
        ga = ctx.search("genetic algorithm", inst).tune(inst, budget=192)
        pick = tuner.best(inst, preset_candidates(inst.dims))
        pick_time = ctx.machine.true_time(StencilExecution(inst, pick))
        assert pick_time < 2.0 * ga.best_time

    def test_model_beats_median_preset_everywhere(self, ctx, tuner):
        for label in ["laplacian-128x128x128", "edge-1024x1024", "wave-128x128x128"]:
            inst = benchmark_by_id(label)
            cands = preset_candidates(inst.dims)
            pick = tuner.best(inst, cands)
            pick_time = ctx.machine.true_time(StencilExecution(inst, pick))
            sample = cands[:: max(1, len(cands) // 150)]
            median = float(np.median(ctx.machine.true_times(inst, sample)))
            # a 2600-point model's pick must be at or below the median
            # preset (small tolerance: edge-1024 sits right on it)
            assert pick_time < 1.15 * median


class TestRankingQuality:
    """§VI-B: τ grows and stabilizes with training-set size."""

    def test_tau_positive_on_training_set(self, ctx, tuner):
        data = ctx.training_set(2600).data
        assert tuner.model.mean_kendall(data) > 0.45

    def test_bigger_set_tighter_tau(self, ctx):
        small = ctx.tuner(640)
        large = ctx.tuner(2600)
        taus_small = np.array(
            list(small.model.kendall_per_group(ctx.training_set(640).data).values())
        )
        taus_large = np.array(
            list(large.model.kendall_per_group(ctx.training_set(2600).data).values())
        )
        assert taus_large.mean() >= taus_small.mean() - 0.05
        assert taus_large.std() <= taus_small.std() + 0.05


class TestTimeAsymmetry:
    """Table II / Fig. 5: ranking costs milliseconds, search costs minutes."""

    def test_rank_vs_search_wall_clock(self, ctx, tuner):
        inst = benchmark_by_id("gradient-128x128x128")
        search = ctx.search("genetic algorithm", inst)
        result = search.tune(inst, budget=128)
        tuner.score_candidates(inst, preset_candidates(3))
        assert tuner.last_rank_seconds < 0.1
        assert result.total_wall_s > 5.0  # simulated testbed seconds
        # the asymmetry itself: >3 orders of magnitude
        assert result.total_wall_s > 1e3 * tuner.last_rank_seconds

    def test_training_under_a_minute(self, ctx, tuner):
        # paper: 0.01-0.36 s in C; Python pays a constant factor but stays small
        assert tuner.last_train_seconds < 60.0


class TestGeneralization:
    """The model must rank *unseen* kernels (the 9 test stencils were never
    in the training corpus — it contains only synthetic shape-family codes)."""

    def test_test_kernels_not_in_training(self, ctx):
        labels = set(ctx.training_set(2600).group_labels.values())
        for label in ["blur-1024x768", "laplacian-256x256x256"]:
            assert label not in labels

    def test_positive_tau_on_unseen_benchmark(self, ctx, tuner):
        from repro.ranking.kendall import kendall_tau

        inst = benchmark_by_id("laplacian-256x256x256")
        cands = preset_candidates(3)[::8]
        scores = tuner.score_candidates(inst, cands)
        truth = ctx.machine.true_times(inst, cands)
        assert kendall_tau(-scores, truth) > 0.3
