"""End-to-end flows: quickstart path, codegen-to-machine consistency,
cross-component determinism."""

import numpy as np
import pytest

from repro import (
    CompilationWorkflow,
    OrdinalAutotuner,
    SimulatedMachine,
    TrainingSetBuilder,
    benchmark_by_id,
)
from repro.codegen.interp import interpret
from repro.codegen.lower import lower_kernel
from repro.codegen.transforms import apply_tuning
from repro.learn.ranksvm import RankSVMConfig
from repro.stencil.grid import Grid
from repro.stencil.reference import apply_kernel


class TestQuickstartPath:
    """The README quickstart must work exactly as documented."""

    def test_full_flow(self, tiny_training_set, tmp_path):
        tuner = OrdinalAutotuner(config=RankSVMConfig(seed=0)).train(tiny_training_set)
        inst = benchmark_by_id("laplacian-128x128x128")
        best = tuner.best(inst)
        machine = SimulatedMachine(seed=0)
        measurement = machine.measure_tuning(inst, best)
        assert measurement.time > 0
        # persist and reuse
        tuner.save(str(tmp_path / "model.npz"))
        clone = OrdinalAutotuner().load(str(tmp_path / "model.npz"))
        assert clone.best(inst) == best


class TestWorkflowToMachine:
    def test_tuned_binary_semantics_match_reference(self, tiny_training_set):
        """The variant the workflow emits computes the right stencil."""
        tuner = OrdinalAutotuner(config=RankSVMConfig(seed=0)).train(tiny_training_set)
        machine = SimulatedMachine(seed=0)
        workflow = CompilationWorkflow(tuner, machine)
        kernel = benchmark_by_id("laplacian-128x128x128").kernel
        size = (12, 10, 8)
        binary = workflow.tune_kernel(kernel, size)
        grids = [Grid.random(size, halo=kernel.radius, dtype=kernel.dtype, rng=3)]
        ref = apply_kernel(kernel, grids)
        out = interpret(binary.variant.nest, grids)
        assert np.allclose(out.interior, ref.interior, rtol=1e-12)


class TestDeterminismAcrossRuns:
    def test_whole_pipeline_reproducible(self):
        def run():
            machine = SimulatedMachine(seed=99)
            ts = TrainingSetBuilder(machine, seed=99).build(520)
            tuner = OrdinalAutotuner(config=RankSVMConfig(seed=99)).train(ts)
            inst = benchmark_by_id("gradient-256x256x256")
            return tuner.best(inst)

        assert run() == run()
