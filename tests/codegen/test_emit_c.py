"""Structural tests for the C emitter."""

import re

import pytest

from repro.codegen.emit_c import emit_c
from repro.codegen.lower import lower_kernel
from repro.codegen.transforms import apply_tuning
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import laplacian
from repro.stencil.suite import BENCHMARKS
from repro.tuning.vector import TuningVector


@pytest.fixture()
def source():
    k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    nest = apply_tuning(lower_kernel(k, (64, 64, 64)), TuningVector(16, 8, 8, 4, 2))
    return emit_c(nest)


class TestStructure:
    def test_has_openmp_pragma_with_chunk(self, source):
        assert "#pragma omp parallel for schedule(dynamic, 2)" in source

    def test_function_signature(self, source):
        assert "void lap_sweep(double *restrict out" in source
        assert "const double *restrict in0" in source

    def test_tile_bounds_clipped_with_min(self, source):
        assert "MIN(tz + 8, sz)" in source
        assert "MIN(tx + 16, sx)" in source

    def test_unrolled_main_and_remainder(self, source):
        assert "/* unrolled x4 */" in source
        assert "/* remainder */" in source
        # main loop writes 4 points per iteration
        assert source.count("out[IDX(") >= 5  # 4 replicas + remainder

    def test_unroll_shifts_in_indices(self, source):
        assert "out[IDX(x + 3, y, z, sx, sy)]" in source

    def test_halo_macro(self, source):
        assert "#define HALO 1" in source

    def test_custom_function_name(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        nest = lower_kernel(k, (8, 8, 8))
        assert "void my_fn(" in emit_c(nest, function_name="my_fn")


class TestKernelVariants:
    def test_multibuffer_signature(self):
        k = BENCHMARKS["divergence"].kernel
        nest = apply_tuning(lower_kernel(k, (16, 16, 16)), TuningVector(4, 4, 4, 0, 1))
        src = emit_c(nest)
        for b in range(3):
            assert f"const double *restrict in{b}" in src

    def test_float_kernel_type(self):
        k = BENCHMARKS["blur"].kernel
        nest = apply_tuning(lower_kernel(k, (64, 64, 1)), TuningVector(8, 8, 1, 0, 1))
        src = emit_c(nest)
        assert "float *restrict out" in src

    def test_no_unroll_no_remainder(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        nest = apply_tuning(lower_kernel(k, (8, 8, 8)), TuningVector(4, 4, 4, 0, 1))
        src = emit_c(nest)
        assert "remainder" not in src

    def test_weights_appear_as_literals(self, source):
        assert re.search(r"0\.5 \* in0\[IDX\(", source)

    def test_braces_balanced(self, source):
        assert source.count("{") == source.count("}")
