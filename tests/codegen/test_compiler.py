"""Tests for the compiler driver and the double-compilation accounting."""

import pytest

from repro.codegen.compiler import PatusCompiler
from repro.codegen.dsl import kernel_to_dsl
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian
from repro.tuning.vector import TuningVector


@pytest.fixture()
def compiler():
    return PatusCompiler()


@pytest.fixture()
def lap():
    return StencilKernel.single_buffer("lap", laplacian(3, 1), "double")


class TestCompile:
    def test_produces_source_and_nest(self, compiler, lap):
        v = compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 2, 1))
        assert "#pragma omp" in v.c_source
        assert v.nest.kernel_name == "lap"
        assert v.compile_seconds > 0

    def test_binary_cache_keyed_on_unroll(self, compiler, lap):
        first = compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 2, 1))
        same_unroll = compiler.compile(lap, (32, 32, 32), TuningVector(16, 4, 2, 2, 4))
        new_unroll = compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 4, 1))
        assert first.compile_seconds > 0
        assert same_unroll.compile_seconds == 0.0  # blocks are runtime params
        assert new_unroll.compile_seconds > 0

    def test_unroll_0_and_1_share_binary(self, compiler, lap):
        compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 0, 1))
        again = compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 1, 1))
        assert again.compile_seconds == 0.0

    def test_accounting_accrues(self, compiler, lap):
        compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 2, 1))
        compiler.compile(lap, (32, 32, 32), TuningVector(8, 8, 8, 4, 1))
        assert compiler.accounted_compile_s == pytest.approx(
            compiler.estimate_compile_seconds(lap, 2)
            + compiler.estimate_compile_seconds(lap, 4)
        )

    def test_compile_dsl_end_to_end(self, compiler, lap):
        v = compiler.compile_dsl(kernel_to_dsl(lap), (16, 16, 16), TuningVector(4, 4, 4, 0, 1))
        assert v.kernel.buffer_patterns == lap.buffer_patterns


class TestTimeModel:
    def test_dense_patterns_slower(self, compiler):
        sparse = StencilKernel.single_buffer("s", laplacian(3, 1), "float")
        dense = StencilKernel.single_buffer("d", hypercube(3, 2), "float")
        assert compiler.estimate_compile_seconds(
            dense, 2
        ) > 2.0 * compiler.estimate_compile_seconds(sparse, 2)

    def test_unroll_increases_gcc_time(self, compiler, lap):
        assert compiler.gcc_seconds(lap, 8) > compiler.gcc_seconds(lap, 1)

    def test_training_set_compile_near_paper_32h(self, compiler):
        """The accounted corpus compile time must land near the paper's 32 h."""
        from repro.autotune.training import generate_training_kernels

        total = compiler.training_set_compile_seconds(generate_training_kernels())
        hours = total / 3600.0
        assert 16.0 < hours < 64.0  # same order as the paper's 32 h
