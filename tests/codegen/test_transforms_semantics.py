"""The codegen correctness core: transformed IR ≡ numpy reference.

Every combination of blocking / unrolling / chunking applied to the loop
nest must compute exactly what the reference executor computes — including
non-dividing blocks, blocks larger than the grid, unroll remainders, 2-D
grids and multi-buffer kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.interp import interpret
from repro.codegen.lower import lower_kernel
from repro.codegen.transforms import apply_tuning
from repro.stencil.grid import Grid
from repro.stencil.kernel import StencilKernel
from repro.stencil.reference import apply_kernel
from repro.stencil.shapes import hypercube, laplacian, line
from repro.stencil.suite import BENCHMARKS
from repro.tuning.vector import TuningVector


def _reference_and_interp(kernel, size, tuning, seed=0):
    halo = max(kernel.radius, 1)
    grids = [
        Grid.random(size, halo=halo, dtype=kernel.dtype, rng=seed + i)
        for i in range(kernel.num_buffers)
    ]
    ref = apply_kernel(kernel, grids)
    nest = apply_tuning(lower_kernel(kernel, size), tuning)
    out = interpret(nest, grids)
    return ref, out


class TestTransformedSemantics:
    @pytest.mark.parametrize(
        "tuning",
        [
            TuningVector(4, 4, 4, 0, 1),
            TuningVector(7, 5, 3, 0, 1),  # non-dividing blocks
            TuningVector(64, 64, 64, 0, 1),  # blocks exceed the grid
            TuningVector(1, 1, 1, 0, 1),  # degenerate single-point tiles
            TuningVector(8, 4, 4, 2, 1),
            TuningVector(8, 4, 4, 3, 2),  # unroll with remainder (14 % 3)
            TuningVector(8, 4, 4, 8, 8),
        ],
    )
    def test_laplacian_all_tunings(self, tuning):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        ref, out = _reference_and_interp(k, (14, 10, 9), tuning)
        assert np.allclose(out.interior, ref.interior, rtol=1e-13)

    def test_wide_halo_kernel(self):
        k = StencilKernel.single_buffer("lap3", laplacian(3, 3), "double")
        ref, out = _reference_and_interp(k, (12, 11, 10), TuningVector(5, 4, 3, 4, 2))
        assert np.allclose(out.interior, ref.interior, rtol=1e-13)

    def test_2d_kernel(self):
        k = StencilKernel.single_buffer("blur", hypercube(2, 2), "float")
        ref, out = _reference_and_interp(k, (21, 13, 1), TuningVector(6, 5, 1, 3, 1))
        assert np.allclose(
            out.interior.astype(np.float64), ref.interior.astype(np.float64), rtol=1e-5
        )

    @pytest.mark.parametrize("name", ["divergence", "tricubic", "wave"])
    def test_paper_multibuffer_kernels(self, name):
        k = BENCHMARKS[name].kernel
        size = (11, 9, 8)
        ref, out = _reference_and_interp(k, size, TuningVector(4, 3, 2, 2, 2))
        assert np.allclose(
            out.interior.astype(np.float64), ref.interior.astype(np.float64), rtol=1e-5
        )

    def test_asymmetric_pattern(self):
        """Non-symmetric offsets catch sign/transposition bugs."""
        from repro.stencil.pattern import StencilPattern

        p = StencilPattern.from_points([(0, 0, 0), (2, 0, 0), (0, -1, 0), (0, 0, 1)])
        k = StencilKernel.single_buffer("asym", p, "double")
        ref, out = _reference_and_interp(k, (9, 8, 7), TuningVector(3, 3, 3, 2, 1))
        assert np.allclose(out.interior, ref.interior, rtol=1e-13)

    @settings(max_examples=15, deadline=None)
    @given(
        bx=st.integers(1, 12),
        by=st.integers(1, 12),
        bz=st.integers(1, 12),
        u=st.integers(0, 8),
        c=st.sampled_from([1, 2, 4]),
    )
    def test_random_tunings_property(self, bx, by, bz, u, c):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        ref, out = _reference_and_interp(k, (10, 9, 8), TuningVector(bx, by, bz, u, c))
        assert np.allclose(out.interior, ref.interior, rtol=1e-13)

    def test_flat_3d_line_kernel(self):
        k = StencilKernel("line3", (line(3, 2),), dtype="double", space_dims=3)
        ref, out = _reference_and_interp(k, (12, 6, 5), TuningVector(5, 2, 2, 4, 1))
        assert np.allclose(out.interior, ref.interior, rtol=1e-13)
