"""Structural tests for the IR and transformation passes."""

import pytest

from repro.codegen.ir import Bound, Loop, LoopNest, PointUpdate, find_loop, walk_loops
from repro.codegen.lower import build_update, lower_kernel
from repro.codegen.transforms import (
    apply_blocking,
    apply_chunking,
    apply_tuning,
    apply_unrolling,
)
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import laplacian
from repro.tuning.vector import TuningVector


@pytest.fixture()
def lap():
    return StencilKernel.single_buffer("lap", laplacian(3, 1), "double")


@pytest.fixture()
def nest(lap):
    return lower_kernel(lap, (16, 12, 8))


class TestBound:
    def test_str_forms(self):
        assert str(Bound("", 3)) == "3"
        assert str(Bound("sx")) == "sx"
        assert str(Bound("tx", -2)) == "tx - 2"

    def test_shifted(self):
        assert Bound("sx", 1).shifted(2) == Bound("sx", 3)


class TestLowering:
    def test_naive_nest_structure(self, nest):
        loops = [lp.var for lp in walk_loops(nest.root)]
        assert loops == ["z", "y", "x"]
        assert nest.root.parallel

    def test_update_terms(self, lap):
        u = build_update(lap)
        assert u.num_reads == 7
        assert all(buf == 0 for (buf, _), _ in u.terms)

    def test_weight_count_checked(self, lap):
        with pytest.raises(ValueError, match="weight maps"):
            build_update(lap, weights=[{}, {}])

    def test_zero_weights_dropped(self, lap):
        w = [{off: 0.0 for off in lap.pattern.offsets}]
        assert build_update(lap, w).num_reads == 0


class TestBlocking:
    def test_tile_loops_created(self, nest):
        blocked = apply_blocking(nest, (4, 4, 4))
        loops = [lp.var for lp in walk_loops(blocked.root)]
        assert loops == ["tz", "ty", "tx", "z", "y", "x"]

    def test_parallel_moves_to_tile_loop(self, nest):
        blocked = apply_blocking(nest, (4, 4, 4))
        assert find_loop(blocked, "tz").parallel
        assert not find_loop(blocked, "z").parallel

    def test_steps_are_block_sizes(self, nest):
        blocked = apply_blocking(nest, (4, 6, 2))
        assert find_loop(blocked, "tx").step == 4
        assert find_loop(blocked, "ty").step == 6
        assert find_loop(blocked, "tz").step == 2

    def test_double_blocking_rejected(self, nest):
        blocked = apply_blocking(nest, (4, 4, 4))
        with pytest.raises(ValueError, match="already has tile loops"):
            apply_blocking(blocked, (2, 2, 2))

    def test_invalid_block(self, nest):
        with pytest.raises(ValueError):
            apply_blocking(nest, (0, 4, 4))

    def test_provenance_recorded(self, nest):
        blocked = apply_blocking(nest, (4, 4, 4))
        assert "block(4,4,4)" in blocked.tuning_note


class TestUnrolling:
    def test_body_replicated_with_shifts(self, nest):
        blocked = apply_blocking(nest, (8, 4, 4))
        unrolled = apply_unrolling(blocked, 4)
        x = find_loop(unrolled, "x")
        assert x.unrolled and x.step == 4
        assert [stmt.shift[0] for stmt in x.body] == [0, 1, 2, 3]

    def test_unroll_zero_and_one_noop(self, nest):
        assert apply_unrolling(nest, 0) is nest
        assert apply_unrolling(nest, 1) is nest

    def test_double_unroll_rejected(self, nest):
        u = apply_unrolling(nest, 2)
        with pytest.raises(ValueError, match="already unrolled"):
            apply_unrolling(u, 2)

    def test_negative_rejected(self, nest):
        with pytest.raises(ValueError):
            apply_unrolling(nest, -2)


class TestChunking:
    def test_chunk_set_on_parallel_loop(self, nest):
        blocked = apply_blocking(nest, (4, 4, 4))
        chunked = apply_chunking(blocked, 8)
        assert find_loop(chunked, "tz").chunk == 8

    def test_invalid_chunk(self, nest):
        with pytest.raises(ValueError):
            apply_chunking(nest, 0)

    def test_requires_parallel_loop(self, lap):
        update = build_update(lap)
        serial = Loop("x", Bound("", 0), Bound("sx"), body=(update,))
        bad = LoopNest("k", 3, (4, 4, 4), 1, "double", serial)
        with pytest.raises(ValueError, match="no parallel loop"):
            apply_chunking(bad, 2)


class TestFullPipeline:
    def test_apply_tuning_composition(self, nest):
        out = apply_tuning(nest, TuningVector(8, 4, 2, 4, 2))
        assert "block(8,4,2)" in out.tuning_note
        assert "unroll(4)" in out.tuning_note
        assert "chunk(2)" in out.tuning_note

    def test_point_update_shift_accumulates(self):
        u = PointUpdate((((0, (0, 0, 0)), 1.0),))
        assert u.shifted(2).shifted(1, 1, 0).shift == (3, 1, 0)

    def test_describe_mentions_kernel(self, nest):
        assert "lap" in nest.describe()
