"""Tests for the stencil DSL parser/printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.dsl import DslError, kernel_to_dsl, parse_dsl
from repro.stencil.kernel import StencilKernel
from repro.stencil.reference import default_weights
from repro.stencil.shapes import TRAINING_SHAPES, laplacian
from repro.stencil.suite import BENCHMARKS

GOOD = """
# a 2-D five-point laplacian
stencil lap5 {
    grid: 2d
    dtype: float
    buffer a {
        (0, 0): 1.0
        (1, 0): 0.25
        (-1, 0): 0.25
        (0, 1): 0.25
        (0, -1): 0.25
    }
}
"""


class TestParse:
    def test_basic(self):
        kernel, weights = parse_dsl(GOOD)
        assert kernel.name == "lap5"
        assert kernel.dims == 2
        assert kernel.dtype.value == "float"
        assert kernel.pattern.num_points == 5
        assert weights[0][(1, 0, 0)] == 0.25

    def test_comments_and_blanks_ignored(self):
        kernel, _ = parse_dsl("# lead\n" + GOOD + "\n# trail\n")
        assert kernel.name == "lap5"

    def test_3d_points(self):
        text = """stencil k {
            grid: 3d
            dtype: double
            buffer a {
                (0, 0, 0): 1.0
                (0, 0, -1): 2.0
            }
        }"""
        kernel, weights = parse_dsl(text)
        assert kernel.dims == 3
        assert weights[0][(0, 0, -1)] == 2.0

    def test_extra_reads(self):
        text = GOOD.replace("dtype: float", "dtype: float\n    extra_reads: 1")
        kernel, _ = parse_dsl(text)
        assert kernel.extra_point_reads == 1

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (lambda s: s.replace("grid: 2d", "grid: 4d"), "grid must be"),
            (lambda s: s.replace("(0, 0): 1.0", "(0 0): 1.0"), "malformed point"),
            (lambda s: s.replace("stencil lap5 {", "stencil lap5"), "malformed stencil"),
            (lambda s: s + "}", "unbalanced"),
            (lambda s: s.replace("grid: 2d", "weird: yes"), "unknown property"),
            (
                lambda s: s.replace("(1, 0): 0.25", "(0, 0): 0.25"),
                "duplicate point",
            ),
        ],
    )
    def test_malformed_inputs(self, mutation, message):
        with pytest.raises(DslError, match=message):
            parse_dsl(mutation(GOOD))

    def test_unclosed_block(self):
        with pytest.raises(DslError, match="unclosed"):
            parse_dsl(GOOD.rstrip().rstrip("}"))

    def test_empty_buffer(self):
        text = "stencil k {\n grid: 2d\n buffer a {\n }\n}"
        with pytest.raises(DslError, match="empty buffer"):
            parse_dsl(text)

    def test_error_reports_line_number(self):
        bad = GOOD.replace("(1, 0): 0.25", "oops")
        with pytest.raises(DslError, match=r"line \d+"):
            parse_dsl(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_all_paper_benchmarks(self, name):
        kernel = BENCHMARKS[name].kernel
        text = kernel_to_dsl(kernel)
        parsed, weights = parse_dsl(text)
        assert parsed.buffer_patterns == kernel.buffer_patterns
        assert parsed.dtype == kernel.dtype
        assert parsed.dims == kernel.dims
        assert parsed.extra_point_reads == kernel.extra_point_reads

    def test_weights_survive(self):
        kernel = BENCHMARKS["laplacian"].kernel
        original = [default_weights(p) for p in kernel.buffer_patterns]
        _, weights = parse_dsl(kernel_to_dsl(kernel, original))
        assert weights[0] == {k: pytest.approx(v) for k, v in original[0].items()}

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(sorted(TRAINING_SHAPES)),
        st.sampled_from([2, 3]),
        st.integers(1, 3),
        st.sampled_from(["float", "double"]),
    )
    def test_training_corpus_roundtrip(self, shape, dims, radius, dtype):
        kernel = StencilKernel(
            "t", (TRAINING_SHAPES[shape](dims, radius),), dtype=dtype, space_dims=dims
        )
        parsed, _ = parse_dsl(kernel_to_dsl(kernel))
        assert parsed.buffer_patterns == kernel.buffer_patterns
        assert parsed.dims == kernel.dims
