"""Tests for the table/figure harnesses (reduced configurations)."""

import numpy as np
import pytest

from repro.experiments.common import SEARCH_METHODS, ExperimentContext, experiment_scale
from repro.experiments.fig4 import Fig4Config, format_fig4, run_fig4
from repro.experiments.fig5 import Fig5Config, format_fig5, run_fig5
from repro.experiments.fig6 import Fig6Config, format_fig6, run_fig6
from repro.experiments.fig7 import Fig7Config, format_fig7, run_fig7
from repro.experiments.table2 import Table2Config, format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture(scope="module")
def context():
    """One shared context with a ~600-point base training set."""
    ctx = ExperimentContext(seed=0)
    ctx.base_training_set(640)
    return ctx


class TestScale:
    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == "small"

    def test_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert experiment_scale() == "paper"

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            experiment_scale()


class TestTable3:
    def test_rows_and_counts(self):
        result = run_table3()
        assert len(result.rows) == 9
        assert result.num_benchmarks == 17

    def test_format_contains_all_stencils(self):
        out = format_table3(run_table3())
        for name in ("blur", "tricubic", "laplacian6"):
            assert name in out


class TestTable2:
    def test_rows_and_monotonicity(self, context):
        cfg = Table2Config(sizes=(520, 640))
        result = run_table2(cfg, context)
        assert len(result.rows) == 2
        # generation time grows with training-set size
        assert result.rows[1]["ts_generation_s"] > result.rows[0]["ts_generation_s"]
        # regression (ranking 8640 candidates) is fast
        assert all(r["regression_s"] < 0.5 for r in result.rows)
        # compile accounting is constant across sizes
        assert result.rows[0]["ts_comp_s"] == result.rows[1]["ts_comp_s"]

    def test_format(self, context):
        out = format_table2(run_table2(Table2Config(sizes=(520,)), context))
        assert "TS Size" in out and "Regression" in out


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, context):
        cfg = Fig4Config(
            benchmarks=("laplacian-128x128x128", "edge-512x512"),
            evaluations=48,
            training_sizes=(520, 640),
        )
        return run_fig4(cfg, context)

    def test_all_methods_reported(self, result):
        methods = next(iter(result.speedups.values()))
        assert len(methods) == len(SEARCH_METHODS) + 2

    def test_ga_speedup_is_one(self, result):
        for label, per_method in result.speedups.items():
            assert per_method["genetic algorithm 48 evaluations"] == pytest.approx(1.0)

    def test_speedups_positive(self, result):
        for per_method in result.speedups.values():
            assert all(v > 0 for v in per_method.values())

    def test_format(self, result):
        out = format_fig4(result)
        assert "speedup" in out
        assert "laplacian-128x128x128" in out


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, context):
        cfg = Fig5Config(
            stencils=("laplacian-128x128x128",),
            evaluations=32,
            training_sizes=(520,),
        )
        return run_fig5(cfg, context)

    def test_curves_monotone_nondecreasing(self, result):
        sp = result.stencils[0]
        for series in sp.search_curves.values():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_checkpoints_powers_of_two(self, result):
        assert result.stencils[0].checkpoints == [1, 2, 4, 8, 16, 32]

    def test_time_to_solution_model_much_faster(self, result):
        tts = result.stencils[0].time_to_solution
        search_min = min(v for k, v in tts.items() if "regression" not in k)
        model_max = max(v for k, v in tts.items() if "regression" in k)
        assert model_max < 0.01 * search_min

    def test_format(self, result):
        out = format_fig5(result)
        assert "GFlop/s" in out and "time-to-solution" in out


class TestFig6And7:
    def test_fig6_tau_improves_with_size(self, context):
        result = run_fig6(Fig6Config(sizes=(520, 640)), context)
        stats_small = result.stats(520)
        stats_large = result.stats(640)
        assert -1.0 <= stats_small["median"] <= 1.0
        assert stats_large["mean"] >= stats_small["mean"] - 0.1

    def test_fig6_format(self, context):
        out = format_fig6(run_fig6(Fig6Config(sizes=(520, 640)), context))
        assert "Kendall" in out

    def test_fig7_distribution_stats(self, context):
        result = run_fig7(Fig7Config(sizes=(520, 640)), context)
        for size, arr in result.taus.items():
            assert arr.size == 210  # one tau per instance
            box = result.box_stats(size)
            assert box["q1"] <= box["median"] <= box["q3"]
            assert box["lo_whisker"] <= box["q1"]
            assert box["q3"] <= box["hi_whisker"]

    def test_fig7_format_with_histograms(self, context):
        out = format_fig7(run_fig7(Fig7Config(sizes=(520,)), context), histograms=True)
        assert "distribution" in out and "#" in out
