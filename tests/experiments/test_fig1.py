"""Tests for the Fig. 1 shape renderer."""

from repro.experiments.fig1 import format_fig1, render_pattern, run_fig1
from repro.stencil.shapes import hypercube, laplacian, line


class TestRenderPattern:
    def test_origin_marked(self):
        art = render_pattern(laplacian(3, 1))
        assert "o" in art

    def test_point_count_matches(self):
        p = hypercube(3, 1)
        art = render_pattern(p)
        assert art.count("#") + art.count("o") == p.num_points

    def test_empty_planes_skipped(self):
        # a line along x touches only the z = 0 plane
        art = render_pattern(line(3, 2))
        assert art.count("z =") == 1

    def test_laplacian_r2_touches_five_planes(self):
        art = render_pattern(laplacian(3, 2))
        assert art.count("z =") == 5


class TestHarness:
    def test_all_families_rendered(self):
        result = run_fig1()
        assert set(result.renderings) == {"line", "hyperplane", "hypercube", "laplacian"}

    def test_counts_table(self):
        result = run_fig1(max_radius=3)
        assert result.point_counts["laplacian"] == {1: 7, 2: 13, 3: 19}
        assert result.point_counts["hypercube"] == {1: 27, 2: 125, 3: 343}

    def test_format_contains_art_and_table(self):
        out = format_fig1(run_fig1())
        assert "Fig. 1" in out
        assert "points per radius" in out
        assert "#" in out
