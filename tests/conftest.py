"""Shared fixtures: machines, encoders and a small cached training set."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.training import TrainingSetBuilder
from repro.features.encoder import FeatureEncoder
from repro.machine.executor import SimulatedMachine
from repro.ranking.partial import RankingGroups
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian
from repro.tuning.space import patus_space


@pytest.fixture()
def machine() -> SimulatedMachine:
    """A fresh, deterministic simulated machine."""
    return SimulatedMachine(seed=1234)


@pytest.fixture(scope="session")
def session_machine() -> SimulatedMachine:
    """A shared machine for read-only measurements (cost cache reused)."""
    return SimulatedMachine(seed=1234)


@pytest.fixture()
def encoder() -> FeatureEncoder:
    return FeatureEncoder()


@pytest.fixture()
def lap3d() -> StencilKernel:
    """The 7-point double-precision Laplacian."""
    return StencilKernel.single_buffer("laplacian", laplacian(3, 1), "double")


@pytest.fixture()
def blur2d() -> StencilKernel:
    """The 5×5 single-precision blur."""
    return StencilKernel.single_buffer("blur", hypercube(2, 2), "float")


@pytest.fixture()
def lap3d_instance(lap3d: StencilKernel) -> StencilInstance:
    return StencilInstance(lap3d, (64, 64, 64))


@pytest.fixture(scope="session")
def tiny_training_set():
    """A ~500-point training set over the full 60-code corpus (cached)."""
    builder = TrainingSetBuilder(machine=SimulatedMachine(seed=7), seed=7)
    return builder.build(520)


@pytest.fixture(scope="session")
def synthetic_ranking_data() -> RankingGroups:
    """A grouped dataset with a known, learnable structure.

    Within every group, the runtime decreases in feature 0 and increases in
    feature 1; other features are noise.  A correct ranker must learn
    ``w[0] > 0 > w[1]``.
    """
    rng = np.random.default_rng(42)
    n_groups, per_group, d = 12, 20, 6
    X = rng.random((n_groups * per_group, d))
    groups = np.repeat(np.arange(n_groups), per_group)
    times = np.exp(-2.0 * X[:, 0] + 1.5 * X[:, 1] + 0.05 * rng.normal(size=len(X)))
    return RankingGroups(X, times, groups)


@pytest.fixture()
def space3d():
    return patus_space(3)


@pytest.fixture()
def space2d():
    return patus_space(2)
