"""Tests for the feature encoder (paper §III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.encoder import FeatureEncoder
from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian
from repro.stencil.suite import TEST_BENCHMARKS, benchmark_by_id
from repro.tuning.space import patus_space
from repro.tuning.vector import TuningVector


@pytest.fixture(scope="module")
def enc():
    return FeatureEncoder()


@pytest.fixture(scope="module")
def inst():
    return benchmark_by_id("laplacian-128x128x128")


class TestLayout:
    def test_num_features_consistent(self, enc, inst):
        x = enc.encode(inst, TuningVector(64, 8, 8, 2, 1))
        assert x.shape == (enc.num_features,)

    def test_feature_names_match_length(self, enc):
        assert len(enc.feature_names()) == enc.num_features

    def test_pattern_block_size(self):
        enc = FeatureEncoder(max_radius=2)
        assert enc.num_features == 125 + 9 + 19 + 19 * 14

    def test_no_pattern_variant(self):
        enc = FeatureEncoder(include_pattern=False)
        assert enc.num_features == 9 + 19 + 19 * 14

    def test_no_interactions_variant(self):
        enc = FeatureEncoder(interactions=False)
        assert enc.num_features == 343 + 9 + 19

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            FeatureEncoder(max_radius=0)


class TestUnitInterval:
    @settings(max_examples=25)
    @given(st.integers(0, 10_000))
    def test_all_features_in_01(self, seed):
        enc = FeatureEncoder()
        inst = benchmark_by_id("wave-128x128x128")
        tv = patus_space(3).random_vector(seed)
        x = enc.encode(inst, tv)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_all_benchmarks_encodable(self, enc):
        for instance in TEST_BENCHMARKS:
            tv = patus_space(instance.dims).random_vector(0)
            x = enc.encode(instance, tv)
            assert np.isfinite(x).all()
            assert x.min() >= 0.0 and x.max() <= 1.0


class TestPatternBlock:
    def test_2d_lives_on_central_plane(self, enc):
        k = StencilKernel.single_buffer("blur", hypercube(2, 1), "float")
        q = StencilInstance(k, (64, 64))
        pat = enc.pattern_features(q).reshape(7, 7, 7)
        center_z = 3
        assert pat[:, :, center_z].sum() > 0
        other = pat.sum() - pat[:, :, center_z].sum()
        assert other == 0.0

    def test_counts_normalized_by_peak(self, enc):
        k = StencilKernel.replicated("k", laplacian(3, 1), 2, "float")
        q = StencilInstance(k, (64, 64, 64))
        pat = enc.pattern_features(q)
        assert pat.max() == 1.0

    def test_radius_overflow_rejected(self, enc):
        k = StencilKernel.single_buffer("wide", laplacian(3, 4), "float")
        q = StencilInstance(k, (64, 64, 64))
        with pytest.raises(ValueError, match="max_radius"):
            enc.pattern_features(q)

    def test_pattern_reconstructable(self, enc, inst):
        """The paper: a feature vector can be decoded back into the shape."""
        from repro.stencil.pattern import StencilPattern

        dense = enc.pattern_features(inst).reshape(7, 7, 7)
        decoded = StencilPattern.from_dense((dense > 0).astype(int))
        assert decoded.offsets == inst.kernel.pattern.offsets


class TestInstanceSensitivity:
    def test_dtype_changes_features(self, enc):
        f = StencilKernel.single_buffer("k", laplacian(3, 1), "float")
        d = StencilKernel.single_buffer("k", laplacian(3, 1), "double")
        tv = TuningVector(64, 8, 8, 2, 1)
        xf = enc.encode(StencilInstance(f, (64, 64, 64)), tv)
        xd = enc.encode(StencilInstance(d, (64, 64, 64)), tv)
        assert not np.array_equal(xf, xd)

    def test_size_changes_features(self, enc):
        k = StencilKernel.single_buffer("k", laplacian(3, 1), "double")
        tv = TuningVector(64, 8, 8, 2, 1)
        a = enc.encode(StencilInstance(k, (64, 64, 64)), tv)
        b = enc.encode(StencilInstance(k, (128, 128, 128)), tv)
        assert not np.array_equal(a, b)

    def test_tuning_changes_features(self, enc, inst):
        a = enc.encode(inst, TuningVector(64, 8, 8, 2, 1))
        b = enc.encode(inst, TuningVector(64, 8, 8, 4, 1))
        assert not np.array_equal(a, b)


class TestBatch:
    def test_batch_matches_single(self, enc, inst):
        tunings = patus_space(3).random_vectors(10, rng=1)
        batch = enc.encode_batch(inst, tunings)
        for i, tv in enumerate(tunings):
            assert np.array_equal(batch[i], enc.encode(inst, tv))

    def test_encode_executions_mixed_instances(self, enc):
        a = benchmark_by_id("laplacian-128x128x128")
        b = benchmark_by_id("blur-1024x768")
        execs = [
            StencilExecution(a, TuningVector(64, 8, 8, 2, 1)),
            StencilExecution(b, TuningVector(64, 8, 1, 2, 1)),
            StencilExecution(a, TuningVector(32, 8, 8, 2, 1)),
        ]
        X = enc.encode_executions(execs)
        assert np.array_equal(X[0], enc.encode(a, execs[0].tuning))
        assert np.array_equal(X[1], enc.encode(b, execs[1].tuning))
        assert np.array_equal(X[2], enc.encode(a, execs[2].tuning))

    def test_interaction_block_is_outer_product(self, inst):
        enc = FeatureEncoder()
        tv = TuningVector(64, 8, 8, 2, 1)
        x = enc.encode(inst, tv)
        tune = enc.tuning_features(inst, [tv])[0]
        desc = enc.instance_descriptor(inst)
        inter = x[-(enc.N_TUNING * enc.N_DESCRIPTOR):]
        assert np.allclose(inter, np.outer(tune, desc).ravel())


class TestEncodeMany:
    """The fused cross-instance path must reproduce encode_batch bit-for-bit."""

    def test_matches_per_instance_batches(self, enc):
        labels = [
            "laplacian-128x128x128",
            "blur-1024x768",
            "edge-512x512",
            "wave-128x128x128",
        ]
        requests = [
            (q, patus_space(q.dims).random_vectors(7 + i, rng=i))
            for i, q in enumerate(benchmark_by_id(l) for l in labels)
        ]
        X = enc.encode_many(requests)
        stacked = np.vstack([enc.encode_batch(q, t) for q, t in requests])
        assert X.shape == stacked.shape
        assert np.array_equal(X, stacked)

    def test_row_layout_is_request_contiguous(self, enc):
        a = benchmark_by_id("laplacian-128x128x128")
        b = benchmark_by_id("blur-1024x768")
        ta = patus_space(3).random_vectors(3, rng=0)
        tb = patus_space(2).random_vectors(2, rng=1)
        X = enc.encode_many([(a, ta), (b, tb)])
        assert np.array_equal(X[:3], enc.encode_batch(a, ta))
        assert np.array_equal(X[3:], enc.encode_batch(b, tb))

    def test_no_interactions_layout(self, inst):
        enc = FeatureEncoder(interactions=False)
        tunings = patus_space(3).random_vectors(4, rng=2)
        X = enc.encode_many([(inst, tunings)])
        assert np.array_equal(X, enc.encode_batch(inst, tunings))

    def test_empty_inputs(self, enc, inst):
        assert enc.encode_many([]).shape == (0, enc.num_features)
        assert enc.encode_many([(inst, [])]).shape == (0, enc.num_features)

    def test_fingerprint_is_stable_id(self, enc):
        assert enc.fingerprint() == f"r3-p1-i1-d{enc.num_features}"
        assert FeatureEncoder(interactions=False).fingerprint() != enc.fingerprint()
