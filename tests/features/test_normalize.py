"""Tests for normalization helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.normalize import lin_norm, log2_norm, log_norm


class TestLinNorm:
    def test_endpoints(self):
        assert lin_norm(0, 0, 8) == 0.0
        assert lin_norm(8, 0, 8) == 1.0

    def test_clipping(self):
        assert lin_norm(-5, 0, 8) == 0.0
        assert lin_norm(99, 0, 8) == 1.0

    def test_vectorized(self):
        out = lin_norm(np.array([0.0, 4.0, 8.0]), 0, 8)
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_bad_range(self):
        with pytest.raises(ValueError):
            lin_norm(1, 5, 5)

    @given(st.floats(-1e6, 1e6, allow_nan=False))
    def test_always_unit_interval(self, v):
        assert 0.0 <= lin_norm(v, -10, 10) <= 1.0


class TestLogNorm:
    def test_endpoints(self):
        assert log_norm(2, 2, 1024) == 0.0
        assert log_norm(1024, 2, 1024) == 1.0

    def test_geometric_midpoint(self):
        mid = float(np.sqrt(2 * 1024))
        assert log_norm(mid, 2, 1024) == pytest.approx(0.5)

    def test_doubling_is_constant_step(self):
        steps = np.diff([log_norm(2**e, 2, 1024) for e in range(1, 11)])
        assert np.allclose(steps, steps[0])

    def test_below_lo_clipped(self):
        assert log_norm(0.5, 2, 1024) == 0.0

    def test_bad_range(self):
        with pytest.raises(ValueError):
            log_norm(1, 0, 8)
        with pytest.raises(ValueError):
            log_norm(1, 8, 2)

    def test_log2_alias(self):
        assert log2_norm(64, 2, 1024) == log_norm(64, 2, 1024)

    def test_vectorized_matches_scalar(self):
        vals = np.array([2.0, 16.0, 128.0])
        vec = log_norm(vals, 2, 1024)
        scal = [log_norm(float(v), 2, 1024) for v in vals]
        assert np.allclose(vec, scal)
