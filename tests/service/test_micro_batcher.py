"""Tests for the request coalescer."""

import asyncio

import pytest

from repro.service.batching import MicroBatcher


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_submits_form_one_batch(self):
        batches = []

        async def main():
            batcher = MicroBatcher(batches.append, max_batch_size=64)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            await batcher.stop()

        run(main())
        assert sum(len(b) for b in batches) == 10
        # concurrency actually coalesced: far fewer batches than items
        assert len(batches) <= 3

    def test_max_batch_size_honored(self):
        batches = []

        async def main():
            batcher = MicroBatcher(batches.append, max_batch_size=4, max_delay_s=0.01)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            await batcher.stop()

        run(main())
        assert max(len(b) for b in batches) <= 4
        assert sorted(i for b in batches for i in b) == list(range(10))

    def test_zero_delay_still_batches_ready_items(self):
        batches = []

        async def main():
            batcher = MicroBatcher(batches.append, max_batch_size=64, max_delay_s=0.0)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(8)))
            await batcher.stop()

        run(main())
        assert sum(len(b) for b in batches) == 8

    def test_async_processor_supported(self):
        seen = []

        async def process(batch):
            await asyncio.sleep(0)
            seen.extend(batch)

        async def main():
            batcher = MicroBatcher(process, max_batch_size=8)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(5)))
            await batcher.stop()

        run(main())
        assert sorted(seen) == list(range(5))


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def main():
            batcher = MicroBatcher(lambda b: None)
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit(1)

        run(main())

    def test_stop_drains_queue(self):
        seen = []

        async def main():
            batcher = MicroBatcher(seen.extend, max_batch_size=2, max_delay_s=0.0)
            await batcher.start()
            for i in range(7):
                await batcher.submit(i)
            await batcher.stop()  # must process everything already queued
            assert not batcher.running

        run(main())
        assert sorted(seen) == list(range(7))

    def test_restart_after_stop(self):
        seen = []

        async def main():
            batcher = MicroBatcher(seen.extend)
            await batcher.start()
            await batcher.submit("a")
            await batcher.stop()
            await batcher.start()
            await batcher.submit("b")
            await batcher.stop()

        run(main())
        assert seen == ["a", "b"]

    def test_submit_during_stop_rejected(self):
        """No item may slip in between the drain and the worker cancel."""

        async def slow(batch):
            await asyncio.sleep(0.01)

        async def main():
            batcher = MicroBatcher(slow, max_batch_size=1)
            await batcher.start()
            await batcher.submit("a")
            stopping = asyncio.ensure_future(batcher.stop())
            await asyncio.sleep(0)  # let stop() flip the accepting flag
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit("late")
            await stopping

        run(main())

    def test_worker_survives_processor_exception(self):
        seen = []

        def process(batch):
            if "boom" in batch:
                raise RuntimeError("processor bug")
            seen.extend(batch)

        async def main():
            batcher = MicroBatcher(process, max_batch_size=1)
            await batcher.start()
            await batcher.submit("a")
            await batcher.submit("boom")
            await batcher.submit("b")
            await batcher.stop()
            assert isinstance(batcher.last_error, RuntimeError)

        run(main())
        assert seen == ["a", "b"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(lambda b: None, max_batch_size=0)
        with pytest.raises(ValueError, match="max_delay_s"):
            MicroBatcher(lambda b: None, max_delay_s=-1.0)
