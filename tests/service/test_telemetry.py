"""Tests for ServiceTelemetry, including percentile and merge edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import Histogram
from repro.service.telemetry import ServiceTelemetry, merge_stats


class TestPercentileEdgeCases:
    def test_empty_window_reports_zero(self):
        t = ServiceTelemetry()
        assert t.latency_percentile(50) == 0.0
        assert t.latency_percentile(99) == 0.0
        snap = t.snapshot()
        assert snap["latency_p50_ms"] == 0.0
        assert snap["latency_p99_ms"] == 0.0

    def test_single_sample_all_percentiles_equal(self):
        t = ServiceTelemetry()
        t.record_completion(0.25)
        assert t.latency_percentile(0) == pytest.approx(0.25)
        assert t.latency_percentile(50) == pytest.approx(0.25)
        assert t.latency_percentile(99) == pytest.approx(0.25)
        assert t.latency_percentile(100) == pytest.approx(0.25)

    def test_single_failed_sample_still_counts_latency(self):
        t = ServiceTelemetry()
        t.record_completion(0.1, failed=True)
        assert t.failed_total == 1 and t.completed_total == 0
        assert t.latency_percentile(50) == pytest.approx(0.1)

    def test_window_eviction_drops_old_latencies(self):
        t = ServiceTelemetry(latency_window=2)
        for latency in (10.0, 1.0, 2.0):
            t.record_completion(latency)
        # the 10 s outlier aged out of the 2-entry window
        assert t.latency_percentile(100) == pytest.approx(2.0)

    def test_window_size_validated(self):
        with pytest.raises(ValueError, match="latency_window"):
            ServiceTelemetry(latency_window=0)


class TestCounters:
    def test_mean_batch_size_zero_before_first_batch(self):
        assert ServiceTelemetry().mean_batch_size == 0.0

    def test_batch_accounting(self):
        t = ServiceTelemetry()
        t.record_batch(4)
        t.record_batch(8)
        assert t.batches_total == 2
        assert t.mean_batch_size == pytest.approx(6.0)
        assert t.max_batch_size == 8

    def test_snapshot_keys_stable(self):
        keys = set(ServiceTelemetry().snapshot())
        assert {
            "requests_total",
            "completed_total",
            "failed_total",
            "batches_total",
            "mean_batch_size",
            "max_batch_size",
            "scored_candidates_total",
            "degraded_total",
            "shed_total",
            "latency_p50_ms",
            "latency_p99_ms",
            "latency_hist",
        } <= keys

    def test_degraded_and_shed_are_first_class(self):
        t = ServiceTelemetry()
        t.record_degraded()
        t.record_shed()
        t.record_shed()
        snap = t.snapshot()
        assert snap["degraded_total"] == 1
        assert snap["shed_total"] == 2
        merged = merge_stats([snap, ServiceTelemetry().snapshot()])
        assert merged["degraded_total"] == 1
        assert merged["shed_total"] == 2


def _busy_snapshot(latencies, **counter_overrides):
    t = ServiceTelemetry()
    for latency in latencies:
        t.record_request()
        t.record_completion(latency, failed=counter_overrides.get("failed", False))
    return t


class TestMergeStatsEdgeCases:
    def test_empty_windows_merge_to_zero_percentiles(self):
        a, b = ServiceTelemetry(), ServiceTelemetry()
        merged = merge_stats(
            [a.snapshot(), b.snapshot()], [a.window(), b.window()]
        )
        assert merged["workers"] == 2
        assert merged["requests_total"] == 0
        assert merged["latency_p50_ms"] == 0.0
        assert merged["latency_p99_ms"] == 0.0

    def test_no_snapshots_at_all(self):
        merged = merge_stats([])
        assert merged["workers"] == 0
        assert merged["max_batch_size"] == 0
        assert merged["mean_batch_size"] == 0.0
        assert merged["cache_hit_rate"] == 0.0
        assert merged["latency_p50_ms"] == 0.0

    def test_single_worker_merge_is_identity_on_percentiles(self):
        t = _busy_snapshot([0.01, 0.02, 0.03, 0.04])
        snap = t.snapshot()
        merged = merge_stats([snap], [t.window()])
        assert merged["workers"] == 1
        assert merged["requests_total"] == 4
        # one worker: the merged histogram IS the worker's histogram, and the
        # merged percentiles are exactly what that histogram reads back
        assert merged["latency_hist"] == snap["latency_hist"]
        hist = Histogram.from_dict(snap["latency_hist"])
        assert merged["latency_p50_ms"] == hist.percentile(50) * 1e3
        assert merged["latency_p99_ms"] == hist.percentile(99) * 1e3

    def test_all_failed_workers_still_report_latency(self):
        """Failures carry latencies too — the merge must not divide by zero
        or hide the latency story of a fully-failing cluster."""
        workers = [_busy_snapshot([0.05, 0.1], failed=True) for _ in range(3)]
        merged = merge_stats(
            [w.snapshot() for w in workers], [w.window() for w in workers]
        )
        assert merged["completed_total"] == 0
        assert merged["failed_total"] == 6
        assert merged["cache_hit_rate"] == 0.0
        assert merged["mean_batch_size"] == 0.0
        assert merged["latency_p99_ms"] >= merged["latency_p50_ms"] > 0.0

    def test_histogram_merge_agrees_with_pooled_window(self):
        """The acceptance cross-check: merged-histogram p50/p99 within one
        bucket width of the pooled-window percentiles."""
        rng = np.random.default_rng(17)
        workers = [
            _busy_snapshot(rng.lognormal(-4.0, 1.0, size=200)) for _ in range(4)
        ]
        merged = merge_stats(
            [w.snapshot() for w in workers], [w.window() for w in workers]
        )
        h = Histogram()
        for q, pooled_key in (
            (50, "latency_pooled_p50_ms"),
            (99, "latency_pooled_p99_ms"),
        ):
            hist_ms = merged[f"latency_p{q}_ms"]
            pooled_ms = merged[pooled_key]
            lower, upper = h.bucket_bounds(h.bucket_index(pooled_ms / 1e3))
            assert abs(hist_ms - pooled_ms) <= (upper - lower) * 1e3, (
                f"p{q}: hist {hist_ms} vs pooled {pooled_ms}"
            )

    def test_hist_survives_window_eviction_pooling_does_not(self):
        """The reason histograms exist: eviction biases the window pool."""
        t = ServiceTelemetry(latency_window=4)
        for latency in [5.0] * 8 + [0.001] * 4:  # slow era fully evicted
            t.record_completion(latency)
        merged = merge_stats([t.snapshot()], [t.window()])
        assert merged["latency_pooled_p99_ms"] < 10  # window forgot the 5 s era
        assert merged["latency_p99_ms"] > 1000  # histogram did not

    def test_missing_hist_falls_back_to_pooled_windows(self):
        """Pre-histogram snapshots (no ``latency_hist``) keep the old path."""
        snaps = [
            {"requests_total": 2, "batches_total": 1, "mean_batch_size": 2.0},
            {"requests_total": 1, "batches_total": 1, "mean_batch_size": 1.0},
        ]
        merged = merge_stats(snaps, [[0.1, 0.2], [0.4]])
        assert "latency_hist" not in merged
        assert merged["latency_p50_ms"] == pytest.approx(200.0)

    def test_malformed_hist_falls_back_to_pooled_windows(self):
        a = _busy_snapshot([0.01]).snapshot()
        b = _busy_snapshot([0.02]).snapshot()
        b["latency_hist"] = {"counts": "garbage"}
        merged = merge_stats([a, b], [[0.01], [0.02]])
        assert merged["latency_p50_ms"] == pytest.approx(15.0)

    def test_mismatched_bucket_configs_fall_back_to_pooled_windows(self):
        a = _busy_snapshot([0.01]).snapshot()
        b = _busy_snapshot([0.02]).snapshot()
        b["latency_hist"] = Histogram(growth=2.0).to_dict()
        merged = merge_stats([a, b], [[0.01], [0.02]])
        assert merged["latency_p50_ms"] == pytest.approx(15.0)


class TestMergeStatsMissingWorkers:
    """A ``None`` snapshot is a worker that never connected (a socket dial
    failure) or never answered — counted in the fleet, absent from every
    aggregate, never a crash."""

    def test_none_snapshot_is_counted_not_merged(self):
        live = _busy_snapshot([0.01, 0.02])
        merged = merge_stats([live.snapshot(), None], [live.window(), None])
        assert merged["workers"] == 2
        assert merged["missing_workers"] == 1
        assert merged["requests_total"] == 2
        # pooled percentiles come from the one live window, unperturbed
        assert merged["latency_pooled_p50_ms"] == pytest.approx(15.0)

    def test_all_missing_merges_to_empty_fleet_shape(self):
        merged = merge_stats([None, None, None], [None, None, None])
        assert merged["workers"] == 3
        assert merged["missing_workers"] == 3
        assert merged["requests_total"] == 0
        assert merged["max_batch_size"] == 0
        assert merged["mean_batch_size"] == 0.0
        assert merged["cache_hit_rate"] == 0.0
        assert merged["latency_p50_ms"] == 0.0

    def test_fully_connected_fleet_reports_zero_missing(self):
        a, b = ServiceTelemetry(), ServiceTelemetry()
        merged = merge_stats([a.snapshot(), b.snapshot()])
        assert merged["missing_workers"] == 0

    def test_histogram_merge_skips_missing_workers(self):
        """Exact histogram merging must consider only live snapshots — a
        None among them used to poison the hist path into a TypeError."""
        a = _busy_snapshot([0.01])
        b = _busy_snapshot([0.03])
        merged = merge_stats(
            [a.snapshot(), None, b.snapshot()], [a.window(), None, b.window()]
        )
        assert "latency_hist" in merged
        assert merged["latency_hist"]["count"] == 2
        assert merged["missing_workers"] == 1
