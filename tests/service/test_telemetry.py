"""Tests for ServiceTelemetry, including percentile edge cases."""

from __future__ import annotations

import pytest

from repro.service.telemetry import ServiceTelemetry


class TestPercentileEdgeCases:
    def test_empty_window_reports_zero(self):
        t = ServiceTelemetry()
        assert t.latency_percentile(50) == 0.0
        assert t.latency_percentile(99) == 0.0
        snap = t.snapshot()
        assert snap["latency_p50_ms"] == 0.0
        assert snap["latency_p99_ms"] == 0.0

    def test_single_sample_all_percentiles_equal(self):
        t = ServiceTelemetry()
        t.record_completion(0.25)
        assert t.latency_percentile(0) == pytest.approx(0.25)
        assert t.latency_percentile(50) == pytest.approx(0.25)
        assert t.latency_percentile(99) == pytest.approx(0.25)
        assert t.latency_percentile(100) == pytest.approx(0.25)

    def test_single_failed_sample_still_counts_latency(self):
        t = ServiceTelemetry()
        t.record_completion(0.1, failed=True)
        assert t.failed_total == 1 and t.completed_total == 0
        assert t.latency_percentile(50) == pytest.approx(0.1)

    def test_window_eviction_drops_old_latencies(self):
        t = ServiceTelemetry(latency_window=2)
        for latency in (10.0, 1.0, 2.0):
            t.record_completion(latency)
        # the 10 s outlier aged out of the 2-entry window
        assert t.latency_percentile(100) == pytest.approx(2.0)

    def test_window_size_validated(self):
        with pytest.raises(ValueError, match="latency_window"):
            ServiceTelemetry(latency_window=0)


class TestCounters:
    def test_mean_batch_size_zero_before_first_batch(self):
        assert ServiceTelemetry().mean_batch_size == 0.0

    def test_batch_accounting(self):
        t = ServiceTelemetry()
        t.record_batch(4)
        t.record_batch(8)
        assert t.batches_total == 2
        assert t.mean_batch_size == pytest.approx(6.0)
        assert t.max_batch_size == 8

    def test_snapshot_keys_stable(self):
        keys = set(ServiceTelemetry().snapshot())
        assert {
            "requests_total",
            "completed_total",
            "failed_total",
            "batches_total",
            "mean_batch_size",
            "max_batch_size",
            "scored_candidates_total",
            "latency_p50_ms",
            "latency_p99_ms",
        } <= keys
