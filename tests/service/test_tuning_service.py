"""Tests for the async tuning service: equivalence, caching, hot swap."""

import asyncio

import numpy as np
import pytest

from repro.features.encoder import FeatureEncoder
from repro.service.server import TuningService
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.tuning.space import patus_space

#: ≥3 kernels × both dimensionalities (the acceptance grid)
EQUIVALENCE_LABELS = [
    "laplacian-128x128x128",
    "tricubic-128x128x128",
    "wave-128x128x128",
    "blur-1024x768",
    "edge-512x512",
    "game-of-life-512x512",
]


def _candidates(instance, n=48, seed=0):
    return patus_space(instance.dims).random_vectors(n, rng=seed)


def run(coro):
    return asyncio.run(coro)


class TestEquivalence:
    @pytest.mark.parametrize("label", EQUIVALENCE_LABELS)
    def test_bit_identical_to_rank_candidates(self, registry, trained_tuner, label):
        inst = benchmark_by_id(label)
        cands = _candidates(inst)

        async def main():
            async with TuningService(registry) as service:
                return await service.rank(inst, cands)

        response = run(main())
        assert response.ranked == trained_tuner.rank_candidates(inst, cands)
        assert np.array_equal(
            response.scores, trained_tuner.score_candidates(inst, cands)
        )
        assert response.model_version == "v0001"

    def test_mixed_batch_stays_bit_identical(self, registry, trained_tuner):
        """All six kernels coalesced into one micro-batch must still match."""
        insts = [benchmark_by_id(label) for label in EQUIVALENCE_LABELS]
        cand_sets = [_candidates(q, seed=i) for i, q in enumerate(insts)]

        async def main():
            async with TuningService(registry) as service:
                return await asyncio.gather(
                    *(service.rank(q, c) for q, c in zip(insts, cand_sets))
                )

        responses = run(main())
        for q, cands, response in zip(insts, cand_sets, responses):
            assert response.ranked == trained_tuner.rank_candidates(q, cands)

    def test_default_candidates_are_presets(self, registry, trained_tuner):
        inst = benchmark_by_id("edge-512x512")

        async def main():
            async with TuningService(registry) as service:
                return await service.rank(inst)

        response = run(main())
        assert len(response.ranked) == len(preset_candidates(2))
        assert response.best == trained_tuner.best(inst)


class TestCaching:
    def test_repeat_lookup_cached_without_reencoding(self, registry):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = _candidates(inst)

        async def main():
            async with TuningService(registry) as service:
                first = await service.rank(inst, cands)
                scored_after_first = service.telemetry.scored_candidates_total
                second = await service.rank(inst, list(cands))  # equal content
                return service, first, second, scored_after_first

        service, first, second, scored_after_first = run(main())
        assert not first.cached and second.cached
        assert second.ranked == first.ranked
        # the repeat answered from cache: nothing new went through encode+score
        assert service.telemetry.scored_candidates_total == scored_after_first
        assert service.cache.hits >= 1
        assert service.cache.hit_rate > 0

    def test_in_batch_duplicates_deduplicated(self, registry):
        inst = benchmark_by_id("gradient-128x128x128")
        cands = _candidates(inst)

        async def main():
            async with TuningService(registry) as service:
                responses = await asyncio.gather(
                    *(service.rank(inst, list(cands)) for _ in range(8))
                )
                return service, responses

        service, responses = run(main())
        assert len({tuple(r.best.as_tuple()) for r in responses}) == 1
        # only one copy was encoded; the other 7 were answered as hits
        assert service.telemetry.scored_candidates_total == len(cands)
        assert service.cache.hits >= 7

    def test_concurrent_smoke_64_requests(self, registry):
        """The CI smoke contract: ≥64 concurrent mixed requests, hits > 0."""
        insts = [benchmark_by_id(label) for label in EQUIVALENCE_LABELS]
        cand_sets = {q.label(): _candidates(q, n=32) for q in insts}

        async def main():
            async with TuningService(registry) as service:
                responses = await asyncio.gather(
                    *(
                        service.rank(insts[i % len(insts)], cand_sets[insts[i % len(insts)].label()])
                        for i in range(64)
                    )
                )
                return service, responses

        service, responses = run(main())
        assert len(responses) == 64
        assert all(r.ranked for r in responses)
        assert service.cache.hits > 0
        stats = service.stats()
        assert stats["requests_total"] == 64
        assert stats["completed_total"] == 64
        assert stats["failed_total"] == 0
        assert stats["mean_batch_size"] > 1.0
        # every request did at least one lookup (in-batch dedup adds more)
        assert stats["cache_hits"] + stats["cache_misses"] >= 64
        # only the unique (instance, candidate-set) pairs were ever encoded
        assert stats["scored_candidates_total"] <= len(EQUIVALENCE_LABELS) * 32


class TestModelVersioning:
    def test_hot_swap_via_retag(self, registry, trained_tuner, alternate_model):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = _candidates(inst)

        async def main():
            async with TuningService(registry, default_model="prod") as service:
                before = await service.rank(inst, cands)
                v2 = registry.publish(
                    alternate_model, trained_tuner.fingerprint()
                )
                registry.tag("prod", v2)  # hot swap: no restart
                after = await service.rank(inst, cands)
                return before, after

        before, after = run(main())
        assert before.model_version == "v0001"
        assert after.model_version == "v0002"
        assert not np.array_equal(before.scores, after.scores)

    def test_explicit_version_pins_answer(self, registry, trained_tuner, alternate_model):
        inst = benchmark_by_id("blur-1024x768")
        cands = _candidates(inst)
        registry.publish(alternate_model, trained_tuner.fingerprint(), tags=("canary",))

        async def main():
            async with TuningService(registry) as service:
                pinned = await service.rank(inst, cands, model="v0001")
                canary = await service.rank(inst, cands, model="canary")
                return pinned, canary

        pinned, canary = run(main())
        assert pinned.model_version == "v0001"
        assert canary.model_version == "v0002"

    def test_unknown_model_ref_fails_that_request(self, registry):
        inst = benchmark_by_id("edge-512x512")

        async def main():
            async with TuningService(registry) as service:
                with pytest.raises(KeyError, match="unknown model reference"):
                    await service.rank(inst, _candidates(inst), model="nope")
                # the service keeps serving after a failed request
                ok = await service.rank(inst, _candidates(inst))
                return service, ok

        service, ok = run(main())
        assert ok.ranked
        assert service.telemetry.failed_total == 1

    def test_mismatched_encoder_rejected(self, registry):
        inst = benchmark_by_id("edge-512x512")

        async def main():
            service = TuningService(registry, encoder=FeatureEncoder(interactions=False))
            async with service:
                with pytest.raises(ValueError, match="fingerprint mismatch"):
                    await service.rank(inst, _candidates(inst))

        run(main())

    def test_malformed_request_fails_alone_service_survives(self, registry):
        """A bad candidate payload must not kill the batch worker (or the
        innocent requests coalesced into the same micro-batch)."""
        inst = benchmark_by_id("laplacian-128x128x128")
        good = _candidates(inst)

        async def main():
            async with TuningService(registry) as service:
                results = await asyncio.gather(
                    service.rank(inst, good),
                    service.rank(inst, [(4, 4, 4, 0, 1)]),  # not TuningVectors
                    service.rank(inst, good),
                    return_exceptions=True,
                )
                assert service.running  # worker survived
                follow_up = await service.rank(inst, good)
                return service, results, follow_up

        service, results, follow_up = run(main())
        assert isinstance(results[1], AttributeError)
        assert results[0].ranked == results[2].ranked == follow_up.ranked
        assert service.telemetry.failed_total == 1

    def test_unencodable_instance_fails_alone(self, registry):
        """A kernel beyond the encoder's max_radius must not poison the
        fused scoring pass for the rest of its micro-batch."""
        from repro.stencil.instance import StencilInstance
        from repro.stencil.kernel import StencilKernel
        from repro.stencil.shapes import laplacian

        good = benchmark_by_id("laplacian-128x128x128")
        good_cands = _candidates(good)
        big = StencilInstance(
            StencilKernel.single_buffer("big-r4", laplacian(3, 4), "double"),
            (64, 64, 64),
        )

        async def main():
            async with TuningService(registry) as service:
                results = await asyncio.gather(
                    service.rank(good, good_cands),
                    service.rank(big, _candidates(big)),
                    service.rank(good, list(good_cands)),
                    return_exceptions=True,
                )
                return service, results

        service, results = run(main())
        assert isinstance(results[1], ValueError)
        assert "max_radius" in str(results[1])
        assert results[0].ranked == results[2].ranked
        assert service.telemetry.failed_total == 1

    def test_set_default_model_validates(self, registry):
        async def main():
            async with TuningService(registry) as service:
                with pytest.raises(KeyError):
                    service.set_default_model("ghost")
                service.set_default_model("prod")
                assert service.default_model == "prod"

        run(main())


class TestLifecycle:
    def test_rank_before_start_raises(self, registry):
        inst = benchmark_by_id("edge-512x512")

        async def main():
            service = TuningService(registry)
            with pytest.raises(RuntimeError, match="not running"):
                await service.rank(inst, _candidates(inst))

        run(main())

    def test_latency_percentiles_ordered(self, registry):
        inst = benchmark_by_id("laplacian-128x128x128")

        async def main():
            async with TuningService(registry) as service:
                await asyncio.gather(
                    *(service.rank(inst, _candidates(inst, seed=i)) for i in range(6))
                )
                return service.stats()

        stats = run(main())
        assert 0 < stats["latency_p50_ms"] <= stats["latency_p99_ms"]

    def test_top_level_exports(self):
        import repro

        assert repro.TuningService is TuningService
        assert hasattr(repro, "ModelRegistry") and hasattr(repro, "RankingCache")
