"""Registry corruption containment: checksummed tags, mirror fallback,
last-good archive loading.

The registry is the cluster's only shared mutable state, so a corrupted
write there is the one fault that could take every worker down at once.
These tests pin the containment story: tag reads detect corruption by
checksum and fall back (read-only) to the mirror, the next tag write
repairs the primary, ``latest`` archive loads fall back to the newest
older version that still loads, and concrete refs never silently
substitute a different model.
"""

from __future__ import annotations

import json

import pytest

from repro.service.chaos import corrupt_model_archive, corrupt_registry_tags
from repro.service.registry import LATEST, ModelRegistry


def _tags_file(registry: ModelRegistry):
    return registry.root / "tags.json"


def _bak_file(registry: ModelRegistry):
    return registry.root / "tags.json.bak"


class TestTagsEnvelope:
    def test_tag_writes_checksummed_envelope_and_mirror(self, registry):
        payload = json.loads(_tags_file(registry).read_text())
        assert payload["format"] == "tags-v2"
        assert payload["tags"] == {"prod": "v0001"}
        assert isinstance(payload["sha256"], str) and len(payload["sha256"]) == 64
        assert _bak_file(registry).read_bytes() == _tags_file(registry).read_bytes()

    def test_legacy_plain_map_still_accepted(self, registry):
        _tags_file(registry).write_text(json.dumps({"prod": "v0001", "old": "v0001"}))
        fresh = ModelRegistry(registry.root)
        assert fresh.tags() == {"prod": "v0001", "old": "v0001"}
        assert fresh.corruption_detected == 0


class TestTagsCorruptionFallback:
    def test_corrupt_primary_served_from_mirror(self, registry):
        original = corrupt_registry_tags(registry.root)
        assert _tags_file(registry).read_bytes() != original
        fresh = ModelRegistry(registry.root)  # no memo of the good bytes
        assert fresh.tags() == {"prod": "v0001"}
        assert fresh.resolve("prod") == "v0001"
        assert fresh.corruption_detected == 1
        # repeated reads of the same corrupt bytes count the incident once
        fresh.tags()
        fresh.tags()
        assert fresh.corruption_detected == 1

    def test_checksum_mismatch_detected_not_just_bad_json(self, registry):
        payload = json.loads(_tags_file(registry).read_text())
        payload["tags"] = {"prod": "v0999"}  # bit-flipped map, stale checksum
        _tags_file(registry).write_text(json.dumps(payload))
        fresh = ModelRegistry(registry.root)
        assert fresh.tags() == {"prod": "v0001"}, (
            "a tags map that fails its checksum must not be believed"
        )
        assert fresh.corruption_detected == 1

    def test_both_copies_corrupt_yields_no_tags(self, registry):
        corrupt_registry_tags(registry.root)
        _bak_file(registry).write_bytes(b"also garbage")
        fresh = ModelRegistry(registry.root)
        assert fresh.tags() == {}
        with pytest.raises(KeyError):
            fresh.resolve("prod")

    def test_next_tag_write_repairs_the_primary(self, registry):
        corrupt_registry_tags(registry.root)
        registry.tag("canary", "v0001")
        payload = json.loads(_tags_file(registry).read_text())
        assert payload["format"] == "tags-v2"
        assert payload["tags"] == {"prod": "v0001", "canary": "v0001"}
        fresh = ModelRegistry(registry.root)
        assert fresh.tags() == {"prod": "v0001", "canary": "v0001"}
        assert fresh.corruption_detected == 0

    def test_corruption_is_readonly_fallback_not_repair_on_read(self, registry):
        """Reading through corruption must not write anything: repair
        belongs to the next writer (which holds the lock)."""
        corrupt_registry_tags(registry.root)
        corrupted = _tags_file(registry).read_bytes()
        fresh = ModelRegistry(registry.root)
        fresh.tags()
        assert _tags_file(registry).read_bytes() == corrupted


class TestArchiveCorruptionFallback:
    def test_latest_falls_back_to_newest_loadable_version(
        self, registry, trained_tuner, alternate_model
    ):
        v2 = registry.publish(
            alternate_model, trained_tuner.fingerprint(), note="second"
        )
        corrupt_model_archive(registry.root, v2)
        model = registry.load(LATEST)
        assert model.is_fitted
        assert registry.corruption_fallbacks == 1
        # the fallback served v0001's bytes, not a broken v0002
        import numpy as np

        good = registry.load("v0001")
        assert np.array_equal(model.w_, good.w_)

    def test_concrete_ref_never_substitutes(self, registry, trained_tuner, alternate_model):
        v2 = registry.publish(
            alternate_model, trained_tuner.fingerprint(), note="second"
        )
        corrupt_model_archive(registry.root, v2)
        with pytest.raises(ValueError, match="corrupted or unreadable"):
            registry.load(v2)
        registry.tag("pinned", v2)
        with pytest.raises(ValueError, match="corrupted or unreadable"):
            registry.load("pinned")
        assert registry.corruption_fallbacks == 0

    def test_restored_bytes_load_again(self, registry, trained_tuner, alternate_model):
        v2 = registry.publish(
            alternate_model, trained_tuner.fingerprint(), note="second"
        )
        original = corrupt_model_archive(registry.root, v2)
        (registry.root / "models" / f"{v2}.npz").write_bytes(original)
        fresh = ModelRegistry(registry.root)
        assert fresh.load(v2).is_fitted
        assert fresh.corruption_fallbacks == 0
