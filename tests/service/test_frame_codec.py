"""Property/fuzz suite for the length-prefixed frame codec.

The codec (:mod:`repro.service.frames`) is the byte layer every socket
transport conversation rests on, so its contract is pinned adversarially:

* **chunking invariance** — however a byte stream is split or coalesced,
  the decoder yields the same payload sequence and the same terminal
  exception (TCP may deliver one byte at a time or a megabyte at once);
* **deterministic error mapping** — a clean close at a frame boundary is
  ``EOFError``; a close mid-frame is ``CorruptFrameError`` (truncated)
  then EOF; a corrupt header (bad magic / oversized length) is
  ``CorruptFrameError`` once, then EOF forever (stream framing is
  unrecoverable); payload garbage inside a valid frame is classified by
  :func:`~repro.service.ipc.decode_frame_payload` and costs one frame;
* **no hangs** — every fuzz case drives the decoder to a terminal state
  in bounded steps.
"""

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.frames import (
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    frame_bytes,
)
from repro.service.ipc import (
    CorruptFrameError,
    Heartbeat,
    Ping,
    RankReply,
    Shutdown,
    decode_frame_payload,
)


def drain(decoder: FrameDecoder) -> "tuple[list[bytes], BaseException | None]":
    """Pop payloads until the decoder needs bytes or terminates.

    Returns (payloads, terminal exception or None) — the observable
    behavior every property compares across chunkings.
    """
    payloads: list[bytes] = []
    while True:
        try:
            payload = decoder.next_payload()
        except (EOFError, CorruptFrameError) as exc:
            return payloads, exc
        if payload is None:
            return payloads, None
        payloads.append(payload)


def feed_chunked(decoder: FrameDecoder, data: bytes, cuts: "list[int]") -> None:
    """Feed ``data`` split at the given cut points (order-normalized)."""
    points = sorted({min(c, len(data)) for c in cuts})
    prev = 0
    for point in points:
        decoder.feed(data[prev:point])
        prev = point
    decoder.feed(data[prev:])


payload_lists = st.lists(st.binary(max_size=200), min_size=0, max_size=6)
cut_lists = st.lists(st.integers(min_value=0, max_value=2000), max_size=12)


class TestChunkingInvariance:
    @settings(max_examples=200, deadline=None)
    @given(payloads=payload_lists, cuts=cut_lists)
    def test_any_split_yields_the_same_payloads(self, payloads, cuts):
        stream = b"".join(frame_bytes(p) for p in payloads)
        decoder = FrameDecoder()
        feed_chunked(decoder, stream, cuts)
        decoder.feed_eof()
        got, terminal = drain(decoder)
        assert got == payloads
        assert isinstance(terminal, EOFError)  # boundary close is clean

    @settings(max_examples=100, deadline=None)
    @given(payloads=payload_lists)
    def test_byte_at_a_time_equals_one_shot(self, payloads):
        stream = b"".join(frame_bytes(p) for p in payloads)
        slow, fast = FrameDecoder(), FrameDecoder()
        for i in range(len(stream)):
            slow.feed(stream[i : i + 1])
        fast.feed(stream)
        for d in (slow, fast):
            d.feed_eof()
        assert drain(slow)[0] == drain(fast)[0] == payloads

    @settings(max_examples=100, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=100), min_size=1, max_size=4),
        trunc=st.integers(min_value=1, max_value=HEADER_BYTES + 100),
        cuts=cut_lists,
    )
    def test_truncation_maps_to_corrupt_then_eof_under_any_split(
        self, payloads, trunc, cuts
    ):
        stream = b"".join(frame_bytes(p) for p in payloads)
        last = frame_bytes(payloads[-1])
        cut = min(trunc, len(last) - 1)  # strictly inside the final frame
        stream = stream[: len(stream) - len(last) + cut]
        decoder = FrameDecoder()
        feed_chunked(decoder, stream, cuts)
        decoder.feed_eof()
        got, terminal = drain(decoder)
        assert got == payloads[:-1]  # complete frames all delivered
        assert isinstance(terminal, CorruptFrameError)
        assert not terminal.genuine_bug
        # and after the truncation report: EOF forever
        with pytest.raises(EOFError):
            decoder.next_payload()


class TestHeaderCorruption:
    @settings(max_examples=150, deadline=None)
    @given(
        garbage=st.binary(min_size=HEADER_BYTES, max_size=64),
        cuts=cut_lists,
    )
    def test_bad_magic_poisons_exactly_once(self, garbage, cuts):
        if garbage[: len(MAGIC)] == MAGIC:
            garbage = b"XXXX" + garbage[len(MAGIC) :]
        decoder = FrameDecoder()
        feed_chunked(decoder, garbage, cuts)
        _, terminal = drain(decoder)
        assert isinstance(terminal, CorruptFrameError)
        assert decoder.poisoned
        # poisoned: EOF forever, and further feeds are inert
        for _ in range(3):
            with pytest.raises(EOFError):
                decoder.next_payload()
            decoder.feed(frame_bytes(b"late arrival"))

    @settings(max_examples=80, deadline=None)
    @given(
        length=st.integers(min_value=MAX_FRAME_BYTES + 1, max_value=2**32 - 1),
        cuts=cut_lists,
    )
    def test_oversized_length_prefix_poisons(self, length, cuts):
        header = MAGIC + struct.pack(">I", length)
        decoder = FrameDecoder()
        feed_chunked(decoder, header + b"\x00" * 32, cuts)
        _, terminal = drain(decoder)
        assert isinstance(terminal, CorruptFrameError)
        assert "length" in str(terminal)
        with pytest.raises(EOFError):
            decoder.next_payload()

    def test_payloads_before_the_corruption_still_deliver(self):
        decoder = FrameDecoder()
        decoder.feed(frame_bytes(b"first") + frame_bytes(b"second") + b"GARBAGEHDR")
        assert decoder.next_payload() == b"first"
        assert decoder.next_payload() == b"second"
        with pytest.raises(CorruptFrameError):
            decoder.next_payload()

    def test_encoder_refuses_oversized_payloads(self):
        class _Huge(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(ValueError):
            frame_bytes(_Huge())


class TestInterleavedFrameTypes:
    def test_mixed_ipc_frames_round_trip_in_order(self):
        messages = [
            Ping(req_id=7),
            Heartbeat(worker_id=2, seq=0, sent_at=1.5),
            Shutdown(),
            RankReply(
                req_id=9,
                ranked=None,
                scores=None,
                model_version="v1",
                cached=False,
                service_latency_s=0.01,
                worker_id=2,
            ),
        ]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        # adversarial chunking across type boundaries
        for i in range(0, len(stream), 3):
            decoder.feed(stream[i : i + 3])
        decoder.feed_eof()
        got, terminal = drain(decoder)
        assert [type(decode_frame_payload(p)) for p in got] == [
            type(m) for m in messages
        ]
        assert isinstance(terminal, EOFError)

    def test_payload_garbage_is_one_lost_frame_not_a_poisoned_stream(self):
        decoder = FrameDecoder()
        decoder.feed(
            frame_bytes(b"\x00not a pickle")
            + encode_frame(Ping(req_id=1))
        )
        bad = decoder.next_payload()
        with pytest.raises(CorruptFrameError) as excinfo:
            decode_frame_payload(bad)
        assert not excinfo.value.genuine_bug  # wire garbage, not a code bug
        # framing survived: the next frame decodes normally
        assert decode_frame_payload(decoder.next_payload()) == Ping(req_id=1)
        assert not decoder.poisoned

    def test_raising_reconstruction_classifies_as_genuine_bug(self):
        with pytest.raises(CorruptFrameError) as excinfo:
            decode_frame_payload(pickle.dumps(_Explodes()))
        assert excinfo.value.genuine_bug
        assert excinfo.value.cause_type == "RuntimeError"


class _Explodes:
    """A payload whose own reconstruction raises — the genuine-bug case."""

    def __reduce__(self):
        return (_explode, ())


def _explode():
    raise RuntimeError("payload reconstruction bug")
