"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.service.registry import ModelRegistry


@pytest.fixture(scope="session")
def trained_tuner(tiny_training_set) -> OrdinalAutotuner:
    """An OrdinalAutotuner trained on the shared ~500-point corpus."""
    return OrdinalAutotuner(config=RankSVMConfig(seed=0)).train(tiny_training_set)


@pytest.fixture(scope="session")
def alternate_model(tiny_training_set) -> RankSVM:
    """A second model (different C) for version/hot-swap tests."""
    return RankSVM(RankSVMConfig(C=0.05, seed=1)).fit(tiny_training_set.data)


@pytest.fixture()
def registry(tmp_path, trained_tuner) -> ModelRegistry:
    """A fresh registry holding the trained model as v0001, tagged prod."""
    reg = ModelRegistry(tmp_path / "registry")
    reg.publish(
        trained_tuner.model, trained_tuner.fingerprint(), tags=("prod",), note="seed"
    )
    return reg
