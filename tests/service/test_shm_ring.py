"""Unit tests for the score slab ring and the instance-keyed encode cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.cache import EncodeCache
from repro.service.shm import (
    DEFAULT_SLOT_BYTES,
    ScoreSlabRing,
    SlabRef,
    leaked_segments,
)


@pytest.fixture()
def ring():
    r = ScoreSlabRing.create("rsl-test-unit", slots=4, slot_bytes=256)
    yield r
    r.unlink()
    r.close()


class TestSlabRing:
    def test_write_view_roundtrip_bit_identical(self, ring):
        arr = np.arange(32, dtype=np.float64) * 0.5
        ref = ring.write(arr)
        assert isinstance(ref, SlabRef)
        assert ref.count == 32 and ref.dtype == "float64"
        view = ring.view(ref)
        assert view.flags.writeable is False
        assert np.array_equal(view, arr)

    def test_release_returns_slot(self, ring):
        refs = [ring.write(np.arange(4.0)) for _ in range(3)]
        assert ring.in_use() == 3
        for ref in refs:
            ring.release(ref)
        assert ring.in_use() == 0
        assert ring.stats()["slab_releases_total"] == 3

    def test_full_ring_falls_back_to_none(self, ring):
        refs = [ring.write(np.arange(4.0)) for _ in range(4)]
        assert all(r is not None for r in refs)
        assert ring.write(np.arange(4.0)) is None  # full -> pickle fallback
        assert ring.stats()["slab_fallbacks_total"] == 1
        ring.release(refs[0])
        assert ring.write(np.arange(4.0)) is not None  # freed slot reused

    def test_oversized_array_falls_back(self, ring):
        big = np.zeros(ring.slot_bytes // 8 + 1, dtype=np.float64)
        assert ring.write(big) is None
        assert ring.stats()["slab_fallbacks_total"] == 1
        assert ring.in_use() == 0  # nothing claimed on the fallback path

    def test_float32_roundtrip(self, ring):
        arr = np.linspace(-1, 1, 16, dtype=np.float32)
        ref = ring.write(arr)
        assert ref.dtype == "float32"
        assert np.array_equal(ring.view(ref), arr)

    def test_attach_sees_owner_writes(self, ring):
        attached = ScoreSlabRing.attach(ring.name, slots=4, slot_bytes=256)
        try:
            ref = attached.write(np.array([1.0, 2.0, 3.0]))
            assert np.array_equal(ring.view(ref), [1.0, 2.0, 3.0])
            assert ring.in_use() == 1
            ring.release(ref)
            assert attached.in_use() == 0
        finally:
            attached.close()

    def test_close_defers_until_last_release(self):
        ring = ScoreSlabRing.create("rsl-test-defer", slots=2, slot_bytes=256)
        ref = ring.write(np.arange(4.0))
        view = ring.view(ref)
        ring.unlink()
        ring.close()  # slot outstanding: must NOT unmap yet
        assert view.sum() == 6.0  # view still readable
        assert ring.write(np.arange(2.0)) is not None  # ring still live
        assert ring.in_use() == 2
        ring.release(SlabRef(ring.name, 1, 2, "float64"))
        ring.release(ref)  # last release performs the real unmap
        assert ring.in_use() == 0
        assert ring.write(np.arange(2.0)) is None  # closed -> fallback
        with pytest.raises(ValueError, match="closed"):
            ring.view(ref)
        ring.release(ref)  # idempotent no-op after close
        assert leaked_segments("rsl-test-defer") == []

    def test_unlink_is_owner_only_and_idempotent(self, ring):
        attached = ScoreSlabRing.attach(ring.name, slots=4, slot_bytes=256)
        try:
            attached.unlink()  # non-owner: no-op
            assert leaked_segments(ring.name) == [ring.name]
        finally:
            attached.close()
        ring.unlink()
        ring.unlink()
        assert leaked_segments(ring.name) == []

    def test_view_rejects_out_of_range_slot(self, ring):
        with pytest.raises(ValueError, match="outside ring"):
            ring.view(SlabRef(ring.name, 99, 4, "float64"))

    def test_default_slot_fits_preset_score_array(self):
        assert DEFAULT_SLOT_BYTES >= 8640 * 8


class TestEncodeCache:
    def _x(self, rows, seed=0):
        return np.random.default_rng(seed).standard_normal((rows, 7))

    def test_second_touch_defers_first_insert(self):
        """Default policy: the first put records, only a repeat stores."""
        cache = EncodeCache(max_rows=100)
        X = self._x(10)
        cache.put(1, 42, X)  # first touch: recorded, not copied
        assert len(cache) == 0
        assert cache.snapshot()["encode_cache_deferred"] == 1
        cache.put(1, 42, X)  # the encode repeated: now it is stored
        hit = cache.get(1, 42)
        assert hit is not None and np.array_equal(hit, X)
        # a different candidate set for the same instance starts over
        cache.put(1, 43, self._x(10, seed=1))
        assert cache.get(1, 43) is None

    def test_second_touch_repeats_after_eviction(self):
        """An evicted entry must re-prove demand before being re-stored."""
        cache = EncodeCache(max_rows=10)
        X = self._x(10)
        cache.put(1, 1, X)
        cache.put(1, 1, X)  # stored
        cache.put(2, 1, self._x(10, seed=2))
        cache.put(2, 1, self._x(10, seed=2))  # stored; evicts key 1
        assert cache.get(1, 1) is None
        cache.put(1, 1, X)  # first touch again, not stored
        assert cache.get(1, 1) is None
        cache.put(1, 1, X)
        assert cache.get(1, 1) is not None

    def test_hit_requires_matching_candidates_hash(self):
        cache = EncodeCache(max_rows=100, second_touch=False)
        X = self._x(10)
        cache.put(1, 42, X)
        hit = cache.get(1, 42)
        assert hit is not None and np.array_equal(hit, X)
        assert cache.get(1, 43) is None  # same instance, different candidates
        assert cache.get(2, 42) is None  # different instance

    def test_entries_are_owned_readonly_copies(self):
        cache = EncodeCache(max_rows=100, second_touch=False)
        X = self._x(4)
        cache.put(1, 42, X)
        X[:] = 0.0  # caller scribbles on its scratch buffer
        hit = cache.get(1, 42)
        assert hit.flags.writeable is False
        assert not np.array_equal(hit, X)

    def test_lru_eviction_bounds_total_rows(self):
        cache = EncodeCache(max_rows=25, second_touch=False)
        for key in range(4):
            cache.put(key, 1, self._x(10, seed=key))
        assert len(cache) == 2  # 40 rows inserted, only 20 fit
        assert cache.get(0, 1) is None  # oldest evicted
        assert cache.get(3, 1) is not None
        assert cache.snapshot()["encode_cache_evictions"] == 2

    def test_oversized_entry_skipped(self):
        cache = EncodeCache(max_rows=5, second_touch=False)
        cache.put(1, 1, self._x(10))
        assert len(cache) == 0

    def test_snapshot_and_hit_rate(self):
        cache = EncodeCache(max_rows=100, second_touch=False)
        cache.put(1, 1, self._x(10))
        cache.get(1, 1)
        cache.get(2, 1)
        snap = cache.snapshot()
        assert snap["encode_cache_hits"] == 1
        assert snap["encode_cache_misses"] == 1
        assert snap["encode_cache_rows"] == 10
        assert cache.hit_rate == 0.5
