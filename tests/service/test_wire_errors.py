"""Wire-layer bugfix regressions: error transport and frame-loss triage.

Satellite 1: ``picklable_error`` must preserve the original exception's
type name and formatted traceback even when the exception itself cannot
cross a pipe (e.g. it holds an open file handle).

Satellite 2: ``recv_frame`` must distinguish a genuinely corrupt frame
(transport damage — counted as frame loss) from a real bug raised while
*materializing* the frame (e.g. an object's ``__setstate__`` explodes) —
the latter used to be silently swallowed by the reader loop's
``UNPICKLING_ERRORS`` catch-all.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle

import pytest

from repro.service.ipc import (
    CorruptFrameError,
    WireError,
    picklable_error,
    recv_frame,
)


class _HoldsFileHandle(RuntimeError):
    """An exception that cannot be pickled: it carries an open file."""

    def __init__(self, message: str, handle) -> None:
        super().__init__(message)
        self.handle = handle


class _SetstateBomb:
    """Pickles fine; detonates in ``__setstate__`` on the receiving side."""

    def __getstate__(self):
        return {"armed": True}

    def __setstate__(self, state):
        raise ZeroDivisionError("bug while materializing the frame")


class TestPicklableError:
    def test_picklable_exception_passes_through(self):
        exc = ValueError("plain")
        assert picklable_error(exc) is exc

    def test_unpicklable_error_keeps_type_and_traceback(self, tmp_path):
        handle = open(tmp_path / "scratch.bin", "wb")
        try:
            try:
                raise _HoldsFileHandle("flush failed mid-reply", handle)
            except _HoldsFileHandle as exc:
                with pytest.raises(Exception):
                    pickle.dumps(exc)  # precondition: genuinely unpicklable
                wire = picklable_error(exc)
        finally:
            handle.close()

        assert isinstance(wire, WireError)
        assert wire.original_type == "_HoldsFileHandle"
        assert "flush failed mid-reply" in str(wire)
        # the formatted traceback survives: frames + raise site
        assert "raise _HoldsFileHandle" in wire.original_traceback
        assert "Traceback" in wire.original_traceback

    def test_wire_error_round_trips_through_pickle(self, tmp_path):
        handle = open(tmp_path / "scratch.bin", "wb")
        try:
            try:
                raise _HoldsFileHandle("boom", handle)
            except _HoldsFileHandle as exc:
                wire = picklable_error(exc)
        finally:
            handle.close()

        clone = pickle.loads(pickle.dumps(wire))
        assert isinstance(clone, WireError)
        assert clone.original_type == wire.original_type
        assert clone.original_traceback == wire.original_traceback
        assert str(clone) == str(wire)


class TestRecvFrameTriage:
    def test_crafted_corrupt_frame_is_frame_loss(self):
        a, b = mp.Pipe()
        try:
            a.send_bytes(b"\x80\x04this is not a pickle")
            with pytest.raises(CorruptFrameError) as info:
                recv_frame(b)
        finally:
            a.close()
            b.close()
        assert info.value.genuine_bug is False
        assert info.value.cause_type  # the underlying decode error is named

    def test_truncated_frame_is_frame_loss(self):
        a, b = mp.Pipe()
        try:
            a.send_bytes(pickle.dumps({"req": 1})[:5])
            with pytest.raises(CorruptFrameError) as info:
                recv_frame(b)
        finally:
            a.close()
            b.close()
        assert info.value.genuine_bug is False

    def test_setstate_bug_is_not_frame_loss(self):
        a, b = mp.Pipe()
        try:
            a.send(_SetstateBomb())
            with pytest.raises(CorruptFrameError) as info:
                recv_frame(b)
        finally:
            a.close()
            b.close()
        assert info.value.genuine_bug is True
        assert info.value.cause_type == "ZeroDivisionError"

    def test_healthy_frame_passes(self):
        a, b = mp.Pipe()
        try:
            a.send({"req": 7, "payload": [1, 2, 3]})
            assert recv_frame(b) == {"req": 7, "payload": [1, 2, 3]}
        finally:
            a.close()
            b.close()
