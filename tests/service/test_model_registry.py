"""Tests for the versioned model registry."""

import numpy as np
import pytest

from repro.service.registry import ModelRegistry


class TestPublishAndLoad:
    def test_round_trip_weights(self, registry, trained_tuner):
        loaded = registry.load("v0001")
        assert np.array_equal(loaded.w_, trained_tuner.model.w_)

    def test_versions_monotonic(self, registry, alternate_model, trained_tuner):
        v2 = registry.publish(alternate_model, trained_tuner.fingerprint())
        assert v2 == "v0002"
        assert registry.versions() == ["v0001", "v0002"]

    def test_latest_resolves_to_newest(self, registry, alternate_model, trained_tuner):
        registry.publish(alternate_model, trained_tuner.fingerprint())
        assert registry.resolve("latest") == "v0002"
        loaded = registry.load("latest")
        assert np.array_equal(loaded.w_, alternate_model.w_)

    def test_describe_metadata(self, registry, trained_tuner):
        meta = registry.describe("v0001")
        assert meta["version"] == "v0001"
        assert meta["encoder_fingerprint"] == trained_tuner.fingerprint()
        assert meta["note"] == "seed"
        assert meta["num_features"] == trained_tuner.model.w_.size

    def test_no_temp_files_left_behind(self, registry):
        leftovers = (
            list(registry.root.rglob("*.tmp"))
            + list(registry.root.rglob("*.tmp.npz"))
            + list(registry.root.rglob("*.claim"))
        )
        assert leftovers == []

    def test_claimed_version_never_reallocated(self, registry, alternate_model, trained_tuner):
        """A concurrent publisher's claim (or a crashed publish) burns the id."""
        (registry.models_dir / "v0002.claim").touch()
        v = registry.publish(alternate_model, trained_tuner.fingerprint())
        assert v == "v0003"
        assert registry.versions() == ["v0001", "v0003"]
        assert registry.resolve("latest") == "v0003"

    def test_concurrent_tagging_loses_no_updates(self, registry):
        """tag() is a locked read-modify-write; parallel writers both land."""
        import threading

        from repro.service.registry import ModelRegistry

        def retag(name):
            reg = ModelRegistry(registry.root)  # separate handle, same root
            for _ in range(25):
                reg.tag(name, "v0001")

        threads = [threading.Thread(target=retag, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.tags()["a"] == "v0001"
        assert registry.tags()["b"] == "v0001"


class TestTags:
    def test_publish_tags_resolve(self, registry):
        assert registry.resolve("prod") == "v0001"

    def test_retag_moves_pointer(self, registry, alternate_model, trained_tuner):
        v2 = registry.publish(alternate_model, trained_tuner.fingerprint())
        registry.tag("prod", v2)
        assert registry.resolve("prod") == "v0002"
        # v1 remains loadable by explicit version
        assert registry.load("v0001") is not None

    def test_tag_of_tag(self, registry):
        registry.tag("canary", "prod")
        assert registry.resolve("canary") == "v0001"

    def test_reserved_tag_names_rejected(self, registry):
        with pytest.raises(ValueError, match="reserved"):
            registry.tag("latest", "v0001")
        with pytest.raises(ValueError, match="reserved"):
            registry.tag("v0009", "v0001")

    def test_unknown_ref_raises(self, registry):
        with pytest.raises(KeyError, match="unknown model reference"):
            registry.resolve("nope")
        with pytest.raises(KeyError, match="unknown model version"):
            registry.resolve("v9999")

    def test_empty_registry_latest_raises(self, tmp_path):
        reg = ModelRegistry(tmp_path / "empty")
        with pytest.raises(KeyError, match="registry is empty"):
            reg.resolve("latest")


class TestGarbageCollection:
    def _publish_n(self, registry, model, fingerprint, n):
        return [registry.publish(model, fingerprint) for _ in range(n)]

    def test_keeps_last_n_and_tagged(self, registry, alternate_model, trained_tuner):
        self._publish_n(registry, alternate_model, trained_tuner.fingerprint(), 4)
        registry.tag("pinned", "v0002")
        removed = registry.gc(keep_last=2)
        # v0003 goes; v0001 (prod) and v0002 (pinned) are tagged,
        # v0004/v0005 are the newest two
        assert removed == ["v0003"]
        assert registry.versions() == ["v0001", "v0002", "v0004", "v0005"]
        assert registry.load("v0002").is_fitted

    def test_dry_run_deletes_nothing(self, registry, alternate_model, trained_tuner):
        self._publish_n(registry, alternate_model, trained_tuner.fingerprint(), 2)
        victims = registry.gc(keep_last=1, dry_run=True)
        assert victims == ["v0002"]  # v0001 is tagged prod, v0003 is newest
        assert registry.versions() == ["v0001", "v0002", "v0003"]

    def test_collected_version_unresolvable(self, registry, alternate_model, trained_tuner):
        self._publish_n(registry, alternate_model, trained_tuner.fingerprint(), 1)
        registry.tag("prod", "v0002")  # move prod off the victim
        assert registry.gc(keep_last=1) == ["v0001"]
        with pytest.raises(KeyError, match="unknown model version"):
            registry.resolve("v0001")
        assert not (registry.models_dir / "v0001.npz").exists()

    def test_ids_never_reused_after_gc(self, registry, alternate_model, trained_tuner):
        self._publish_n(registry, alternate_model, trained_tuner.fingerprint(), 1)
        registry.tag("prod", "v0002")
        registry.gc(keep_last=1)
        assert registry.publish(
            alternate_model, trained_tuner.fingerprint()
        ) == "v0003"

    def test_everything_protected_is_noop(self, registry):
        assert registry.gc(keep_last=5) == []
        assert registry.versions() == ["v0001"]

    def test_keep_last_validated(self, registry):
        with pytest.raises(ValueError, match="keep_last"):
            registry.gc(keep_last=0)


class TestTagRollbackUnderConcurrentReaders:
    def test_readers_always_see_complete_models(
        self, registry, alternate_model, trained_tuner
    ):
        """Flip a tag back and forth while readers load through it: every
        read must observe a complete (v0001 or v0002) model — never torn
        state, never a missing file."""
        import threading

        v2 = registry.publish(alternate_model, trained_tuner.fingerprint())
        expected = {
            "v0001": trained_tuner.model.w_,
            v2: alternate_model.w_,
        }
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    version = registry.resolve("prod")
                    model = registry.load(
                        version, expect_fingerprint=trained_tuner.fingerprint()
                    )
                    assert np.array_equal(model.w_, expected[version])
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(30):  # promote / roll back repeatedly
                registry.tag("prod", v2)
                registry.tag("prod", "v0001")
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert failures == []
        assert registry.resolve("prod") == "v0001"


class TestGuards:
    def test_fingerprint_mismatch_rejected(self, registry):
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            registry.load("v0001", expect_fingerprint="r9-p0-i0-d1")

    def test_fingerprint_match_ok(self, registry, trained_tuner):
        assert registry.load(
            "v0001", expect_fingerprint=trained_tuner.fingerprint()
        ).is_fitted

    def test_corrupted_archive_errors(self, registry):
        archive = registry.models_dir / "v0001.npz"
        archive.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="corrupted or unreadable"):
            registry.load("v0001")

    def test_truncated_archive_errors(self, registry):
        archive = registry.models_dir / "v0001.npz"
        archive.write_bytes(archive.read_bytes()[:100])
        with pytest.raises(ValueError, match="corrupted or unreadable"):
            registry.load("v0001")
