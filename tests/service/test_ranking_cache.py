"""Tests for the LRU ranking cache."""

import numpy as np
import pytest

from repro.service.cache import CachedRanking, RankingCache, candidate_set_hash
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import laplacian
from repro.tuning.vector import TuningVector


def _instance(size=(64, 64, 64)):
    k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    return StencilInstance(k, size)


def _entry(n=4, version="v0001"):
    scores = np.arange(n, dtype=float)
    return CachedRanking(
        order=np.argsort(-scores, kind="stable"), scores=scores, model_version=version
    )


CANDS = [TuningVector(16, 8, 8, 2, 1), TuningVector(32, 4, 4, 0, 2)]


class TestKeys:
    def test_content_based_across_objects(self):
        # distinct Python objects with equal content share one key
        k1 = RankingCache.key(_instance(), list(CANDS), "v0001")
        k2 = RankingCache.key(_instance(), [TuningVector(*t.as_tuple()) for t in CANDS], "v0001")
        assert k1 == k2

    def test_size_changes_key(self):
        assert RankingCache.key(_instance((64, 64, 64)), CANDS, "v1") != RankingCache.key(
            _instance((128, 128, 128)), CANDS, "v1"
        )

    def test_model_version_changes_key(self):
        assert RankingCache.key(_instance(), CANDS, "v0001") != RankingCache.key(
            _instance(), CANDS, "v0002"
        )

    def test_candidate_order_matters(self):
        assert candidate_set_hash(CANDS) != candidate_set_hash(CANDS[::-1])


class TestLru:
    def test_hit_and_miss_counters(self):
        cache = RankingCache(max_entries=8)
        key = RankingCache.key(_instance(), CANDS, "v0001")
        assert cache.get(key) is None
        cache.put(key, _entry())
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_drops_least_recent(self):
        cache = RankingCache(max_entries=2)
        keys = [(i, 0, "v") for i in range(3)]
        cache.put(keys[0], _entry())
        cache.put(keys[1], _entry())
        cache.get(keys[0])  # refresh 0 -> 1 becomes LRU
        cache.put(keys[2], _entry())
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
        assert len(cache) == 2

    def test_invalidate_version(self):
        cache = RankingCache()
        cache.put((1, 1, "v0001"), _entry(version="v0001"))
        cache.put((1, 1, "v0002"), _entry(version="v0002"))
        assert cache.invalidate_version("v0001") == 1
        assert len(cache) == 1

    def test_entries_read_only(self):
        entry = _entry()
        with pytest.raises(ValueError):
            entry.scores[0] = 99.0

    def test_snapshot_fields(self):
        cache = RankingCache()
        snap = cache.snapshot()
        assert set(snap) == {
            "cache_entries",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "cache_evictions",
        }
