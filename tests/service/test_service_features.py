"""Tests for the PR-3 service features: top-k mode, candidate interning,
and the response-hook (feedback) API."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service.cache import InternedCandidates, candidate_set_hash, intern_candidates
from repro.service.server import TuningService
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space


def _candidates(instance, n=48, seed=0):
    return patus_space(instance.dims).random_vectors(n, rng=seed)


def run(coro):
    return asyncio.run(coro)


class TestTopK:
    def test_top_k_is_prefix_of_full_ranking(self, registry):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = _candidates(inst)

        async def main():
            async with TuningService(registry) as service:
                top = await service.rank(inst, cands, top_k=5)
                full = await service.rank(inst, list(cands))
                return top, full

        top, full = run(main())
        assert len(top.ranked) == 5
        assert top.ranked == full.ranked[:5]
        assert top.best == full.best
        # scores stay complete and aligned with the request's order
        assert np.array_equal(top.scores, full.scores)

    def test_top_k_and_full_share_cache_entries(self, registry):
        inst = benchmark_by_id("blur-1024x768")
        cands = _candidates(inst)

        async def main():
            async with TuningService(registry) as service:
                first = await service.rank(inst, cands, top_k=3)
                second = await service.rank(inst, list(cands))  # full, same key
                third = await service.rank(inst, list(cands), top_k=7)
                return service, first, second, third

        service, first, second, third = run(main())
        assert not first.cached and second.cached and third.cached
        # one encode+score pass served all three shapes of the answer
        assert service.telemetry.scored_candidates_total == len(cands)
        assert third.ranked == second.ranked[:7]

    def test_top_k_larger_than_set_returns_everything(self, registry):
        inst = benchmark_by_id("edge-512x512")
        cands = _candidates(inst, n=6)

        async def main():
            async with TuningService(registry) as service:
                return await service.rank(inst, cands, top_k=100)

        response = run(main())
        assert len(response.ranked) == 6

    def test_top_k_validated(self, registry):
        inst = benchmark_by_id("edge-512x512")

        async def main():
            async with TuningService(registry) as service:
                with pytest.raises(ValueError, match="top_k"):
                    await service.rank(inst, _candidates(inst), top_k=0)

        run(main())


class TestInterning:
    def test_interned_answers_match_plain(self, registry):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = _candidates(inst)
        interned = intern_candidates(cands)

        async def main():
            async with TuningService(registry) as service:
                plain = await service.rank(inst, cands)
                via_interned = await service.rank(inst, interned)
                return plain, via_interned

        plain, via_interned = run(main())
        assert via_interned.ranked == plain.ranked
        assert via_interned.cached  # same cache key as the plain request

    def test_intern_precomputes_the_hash(self):
        cands = _candidates(benchmark_by_id("edge-512x512"))
        interned = intern_candidates(cands)
        assert isinstance(interned, InternedCandidates)
        assert interned.content_hash == candidate_set_hash(cands)
        assert len(interned) == len(cands)
        assert list(interned) == list(cands)

    def test_intern_is_idempotent(self):
        cands = _candidates(benchmark_by_id("edge-512x512"))
        interned = intern_candidates(cands)
        assert intern_candidates(interned) is interned

    def test_interned_requests_skip_per_request_hashing(self, registry, monkeypatch):
        inst = benchmark_by_id("blur-1024x768")
        interned = intern_candidates(_candidates(inst))
        calls = {"n": 0}
        import repro.service.server as server_mod

        real = server_mod.candidate_set_hash

        def counting(cands):
            calls["n"] += 1
            return real(cands)

        monkeypatch.setattr(server_mod, "candidate_set_hash", counting)

        async def main():
            async with TuningService(registry) as service:
                for _ in range(3):
                    await service.rank(inst, interned)

        run(main())
        assert calls["n"] == 0


class TestResponseHooks:
    def test_hook_sees_every_answer(self, registry):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = _candidates(inst)
        seen = []

        async def main():
            async with TuningService(registry) as service:
                service.add_response_hook(
                    lambda q, c, r: seen.append((q, c, r))
                )
                first = await service.rank(inst, cands)
                second = await service.rank(inst, list(cands))  # cache hit
                return first, second

        first, second = run(main())
        assert len(seen) == 2
        q, c, r = seen[0]
        assert q is inst
        assert list(c) == list(cands)
        assert r.ranked == first.ranked
        assert seen[1][2].cached

    def test_raising_hook_never_fails_the_request(self, registry):
        inst = benchmark_by_id("edge-512x512")

        def bad_hook(q, c, r):
            raise RuntimeError("observability went down")

        async def main():
            async with TuningService(registry) as service:
                service.add_response_hook(bad_hook)
                response = await service.rank(inst, _candidates(inst))
                return service, response

        service, response = run(main())
        assert response.ranked
        assert service.hook_errors == 1
        assert "observability" in str(service.last_hook_error)
        assert service.telemetry.failed_total == 0

    def test_remove_hook(self, registry):
        inst = benchmark_by_id("edge-512x512")
        seen = []
        hook = lambda q, c, r: seen.append(r)  # noqa: E731

        async def main():
            async with TuningService(registry) as service:
                service.add_response_hook(hook)
                await service.rank(inst, _candidates(inst))
                service.remove_response_hook(hook)
                service.remove_response_hook(hook)  # no-op, no error
                await service.rank(inst, _candidates(inst, seed=1))

        run(main())
        assert len(seen) == 1
