"""Tests for StencilPattern: construction, algebra, dense round trips."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stencil.pattern import StencilPattern

offsets_3d = st.tuples(
    st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)
)


class TestConstruction:
    def test_from_points_2d_promoted(self):
        p = StencilPattern.from_points([(0, -1), (0, 1)])
        assert p.offsets == ((0, -1, 0), (0, 1, 0))

    def test_duplicates_accumulate(self):
        p = StencilPattern.from_points([(0, 0, 0), (0, 0, 0)])
        assert p.counts[(0, 0, 0)] == 2
        assert p.num_points == 1
        assert p.num_reads == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            StencilPattern.from_points([])

    def test_bad_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            StencilPattern.from_points([(1,)])
        with pytest.raises(ValueError):
            StencilPattern.from_points([(1, 2, 3, 4)])

    def test_from_counts_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StencilPattern.from_counts({(0, 0, 0): 0})


class TestProperties:
    def test_laplacian5(self):
        p = StencilPattern.from_points(
            [(0, -1), (-1, 0), (0, 0), (1, 0), (0, 1)]
        )
        assert p.num_points == 5
        assert p.radius == 1
        assert p.dims == 2
        assert p.reads_origin

    def test_extent_per_axis(self):
        p = StencilPattern.from_points([(2, 0, 0), (0, -1, 0), (0, 0, 3)])
        assert p.extent == (2, 1, 3)

    def test_axis_span(self):
        p = StencilPattern.from_points([(-2, 0, 0), (1, 0, 0)])
        assert p.axis_span(0) == (-2, 1)

    def test_planes(self):
        p = StencilPattern.from_points([(0, 0, -1), (0, 0, 0), (0, 0, 1)])
        assert p.planes(axis=2) == 3
        assert p.planes(axis=0) == 1

    def test_no_origin(self):
        p = StencilPattern.from_points([(1, 0, 0), (-1, 0, 0)])
        assert not p.reads_origin

    def test_contains_and_len(self):
        p = StencilPattern.from_points([(0, 0, 0), (1, 0, 0)])
        assert (1, 0, 0) in p
        assert (0, 1, 0) not in p
        assert len(p) == 2


class TestDense:
    def test_to_dense_center(self):
        p = StencilPattern.from_points([(0, 0, 0)])
        d = p.to_dense(1)
        assert d.shape == (3, 3, 3)
        assert d[1, 1, 1] == 1
        assert d.sum() == 1

    def test_to_dense_too_small_radius(self):
        p = StencilPattern.from_points([(2, 0, 0)])
        with pytest.raises(ValueError, match="too small"):
            p.to_dense(1)

    def test_from_dense_rejects_even(self):
        with pytest.raises(ValueError, match="odd"):
            StencilPattern.from_dense(np.ones((2, 2, 2)))

    def test_from_dense_2d_promoted(self):
        m = np.zeros((3, 3))
        m[1, 1] = 1
        m[2, 1] = 2
        p = StencilPattern.from_dense(m)
        assert p.counts == {(0, 0, 0): 1, (1, 0, 0): 2}

    @given(st.sets(offsets_3d, min_size=1, max_size=12))
    def test_dense_roundtrip(self, points):
        p = StencilPattern.from_points(points)
        assert StencilPattern.from_dense(p.to_dense()) == p

    @given(st.sets(offsets_3d, min_size=1, max_size=12), st.integers(3, 5))
    def test_dense_roundtrip_padded(self, points, radius):
        p = StencilPattern.from_points(points)
        assert StencilPattern.from_dense(p.to_dense(radius)) == p


class TestAlgebra:
    def test_merge_sums_counts(self):
        a = StencilPattern.from_points([(0, 0, 0), (1, 0, 0)])
        b = StencilPattern.from_points([(0, 0, 0)])
        merged = a + b
        assert merged.counts[(0, 0, 0)] == 2
        assert merged.counts[(1, 0, 0)] == 1

    def test_merge_type_checked(self):
        a = StencilPattern.from_points([(0, 0, 0)])
        with pytest.raises(TypeError):
            a.merge("x")  # type: ignore[arg-type]

    @given(st.sets(offsets_3d, min_size=1, max_size=8))
    def test_merge_commutative(self, points):
        a = StencilPattern.from_points(points)
        b = StencilPattern.from_points([(0, 0, 0), (1, 1, 1)])
        assert a.merge(b) == b.merge(a)

    def test_shifted(self):
        p = StencilPattern.from_points([(0, 0, 0)]).shifted((1, -1, 2))
        assert p.offsets == ((1, -1, 2),)

    @given(st.sets(offsets_3d, min_size=1, max_size=8), offsets_3d)
    def test_shift_roundtrip(self, points, delta):
        p = StencilPattern.from_points(points)
        neg = tuple(-d for d in delta)
        assert p.shifted(delta).shifted(neg) == p

    def test_hashable_and_equal(self):
        a = StencilPattern.from_points([(0, 0, 0), (1, 0, 0)])
        b = StencilPattern.from_points([(1, 0, 0), (0, 0, 0)])
        assert a == b
        assert hash(a) == hash(b)
