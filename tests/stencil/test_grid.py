"""Tests for Grid halo handling and views."""

import numpy as np
import pytest

from repro.stencil.grid import Grid


class TestConstruction:
    def test_zeros_shapes(self):
        g = Grid.zeros((8, 6, 4), halo=2)
        assert g.shape == (8, 6, 4)
        assert g.data.shape == (12, 10, 8)

    def test_2d_promoted(self):
        g = Grid.zeros((8, 6), halo=1)
        assert g.shape == (8, 6, 1)

    def test_random_fills_everything(self):
        g = Grid.random((4, 4, 4), halo=1, rng=0)
        assert (g.data != 0).mean() > 0.9

    def test_dtype_mapping(self):
        assert Grid.zeros((4, 4, 4), 0, "float").data.dtype == np.float32
        assert Grid.zeros((4, 4, 4), 0, "double").data.dtype == np.float64

    def test_from_interior(self):
        arr = np.arange(8.0).reshape(2, 2, 2)
        g = Grid.from_interior(arr, halo=1)
        assert np.array_equal(g.interior, arr)
        assert g.data[0, 0, 0] == 0.0

    def test_negative_halo(self):
        with pytest.raises(ValueError):
            Grid.zeros((4, 4, 4), halo=-1)


class TestViews:
    def test_interior_is_view(self):
        g = Grid.zeros((4, 4, 4), halo=1)
        g.interior[0, 0, 0] = 7.0
        assert g.data[1, 1, 1] == 7.0

    def test_shifted_view_shape(self):
        g = Grid.random((6, 5, 4), halo=2, rng=1)
        v = g.shifted_view((1, -2, 0))
        assert v.shape == (6, 5, 4)

    def test_shifted_view_content(self):
        g = Grid.zeros((3, 3, 3), halo=1)
        g.data[2, 1, 1] = 5.0  # interior point (1, 0, 0)
        assert g.shifted_view((1, 0, 0))[0, 0, 0] == 5.0

    def test_shift_exceeding_halo(self):
        g = Grid.zeros((4, 4, 4), halo=1)
        with pytest.raises(ValueError, match="exceeds halo"):
            g.shifted_view((2, 0, 0))

    def test_halo_zero_interior_is_data(self):
        g = Grid.zeros((4, 4, 4), halo=0)
        assert g.interior is g.data


class TestHaloFill:
    def test_periodic_wrap(self):
        g = Grid.zeros((4, 4, 4), halo=1)
        g.interior[...] = np.arange(64.0).reshape(4, 4, 4)
        g.fill_halo_periodic()
        # low halo plane along x equals the high interior plane
        assert np.array_equal(g.data[0, 1:-1, 1:-1], g.interior[3])

    def test_degenerate_axis_replicates(self):
        g = Grid.zeros((4, 4, 1), halo=1)
        g.interior[...] = 1.0
        g.fill_halo_periodic()
        assert np.array_equal(g.data[1:-1, 1:-1, 0], g.data[1:-1, 1:-1, 1])

    def test_copy_is_deep(self):
        g = Grid.random((4, 4, 4), halo=1, rng=2)
        c = g.copy()
        c.interior[0, 0, 0] += 1.0
        assert g.interior[0, 0, 0] != c.interior[0, 0, 0]
