"""Tests for the Fig. 1 training-shape generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stencil.shapes import TRAINING_SHAPES, hypercube, hyperplane, laplacian, line

dims_st = st.sampled_from([2, 3])
radius_st = st.integers(1, 4)


class TestLine:
    @given(dims_st, radius_st)
    def test_point_count(self, dims, radius):
        assert line(dims, radius).num_points == 2 * radius + 1

    def test_axis_selection(self):
        p = line(3, 2, axis=1)
        assert all(off[0] == 0 and off[2] == 0 for off in p.offsets)

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            line(2, 1, axis=2)

    def test_includes_origin(self):
        assert line(3, 1).reads_origin


class TestHyperplane:
    @given(radius_st)
    def test_3d_point_count(self, radius):
        assert hyperplane(3, radius).num_points == (2 * radius + 1) ** 2

    @given(radius_st)
    def test_2d_point_count(self, radius):
        assert hyperplane(2, radius).num_points == (2 * radius + 1) ** 2

    def test_normal_axis(self):
        p = hyperplane(3, 1, normal_axis=0)
        assert all(off[0] == 0 for off in p.offsets)

    def test_bad_normal(self):
        with pytest.raises(ValueError):
            hyperplane(3, 1, normal_axis=5)


class TestHypercube:
    @given(radius_st)
    def test_3d_point_count(self, radius):
        assert hypercube(3, radius).num_points == (2 * radius + 1) ** 3

    @given(radius_st)
    def test_2d_point_count(self, radius):
        assert hypercube(2, radius).num_points == (2 * radius + 1) ** 2

    @given(dims_st, radius_st)
    def test_radius(self, dims, radius):
        assert hypercube(dims, radius).radius == radius


class TestLaplacian:
    @given(radius_st)
    def test_3d_point_count(self, radius):
        assert laplacian(3, radius).num_points == 6 * radius + 1

    @given(radius_st)
    def test_2d_point_count(self, radius):
        assert laplacian(2, radius).num_points == 4 * radius + 1

    def test_wave_shape_is_13_points(self):
        # Table III: the wave kernel uses a "13 laplacian"
        assert laplacian(3, 2).num_points == 13

    def test_laplacian6_is_19_points(self):
        assert laplacian(3, 3).num_points == 19

    @given(dims_st, radius_st)
    def test_star_has_no_diagonal(self, dims, radius):
        p = laplacian(dims, radius)
        for off in p.offsets:
            assert sum(1 for c in off if c != 0) <= 1


class TestRegistry:
    def test_four_families(self):
        assert set(TRAINING_SHAPES) == {"line", "hyperplane", "hypercube", "laplacian"}

    @given(st.sampled_from(sorted(TRAINING_SHAPES)), dims_st, radius_st)
    def test_all_2d_shapes_flat(self, name, dims, radius):
        p = TRAINING_SHAPES[name](dims, radius)
        if dims == 2:
            assert all(off[2] == 0 for off in p.offsets)

    @given(st.sampled_from(sorted(TRAINING_SHAPES)), dims_st, radius_st)
    def test_shapes_fit_declared_radius(self, name, dims, radius):
        assert TRAINING_SHAPES[name](dims, radius).radius == radius

    def test_invalid_dims(self):
        for fn in TRAINING_SHAPES.values():
            with pytest.raises(ValueError):
                fn(4, 1)

    def test_invalid_radius(self):
        for fn in TRAINING_SHAPES.values():
            with pytest.raises(ValueError):
                fn(3, 0)
