"""Tests pinning the Table III benchmark registry to the paper."""

import pytest

from repro.stencil.suite import BENCHMARKS, TEST_BENCHMARKS, benchmark_by_id, get_benchmark


class TestRegistry:
    def test_nine_kernels(self):
        assert len(BENCHMARKS) == 9

    def test_seventeen_benchmarks(self):
        assert len(TEST_BENCHMARKS) == 17

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("nope")

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            benchmark_by_id("nope-1x1")

    def test_instance_requires_listed_size(self):
        with pytest.raises(KeyError):
            get_benchmark("blur").instance((333, 333))


class TestTableIIIRows:
    """Each case pins one row of Table III."""

    @pytest.mark.parametrize(
        "name, dims, points, buffers, dtype, n_sizes",
        [
            ("blur", 2, 25, 1, "float", 2),
            ("edge", 2, 9, 1, "float", 2),
            ("game-of-life", 2, 9, 1, "float", 2),
            ("wave", 3, 13, 1, "float", 2),
            ("tricubic", 3, 64 + 1, 3, "float", 2),  # cube + centre reads overlap
            ("divergence", 3, 6, 3, "double", 1),
            ("gradient", 3, 6, 1, "double", 2),
            ("laplacian", 3, 7, 1, "double", 2),
            ("laplacian6", 3, 19, 1, "double", 2),
        ],
    )
    def test_row(self, name, dims, points, buffers, dtype, n_sizes):
        b = get_benchmark(name)
        assert b.kernel.dims == dims
        assert b.kernel.num_buffers == buffers
        assert b.kernel.dtype.value == dtype
        assert len(b.sizes) == n_sizes
        if name == "tricubic":
            # 64-point cube on buffer 0, centre point on buffers 1 and 2;
            # the centre lies inside the cube, so distinct offsets stay 64
            assert b.kernel.pattern.num_points == 64
            assert b.kernel.reads_per_point == 66
        else:
            assert b.kernel.pattern.num_points == points

    def test_wave_reads_extra_point(self):
        assert get_benchmark("wave").kernel.reads_per_point == 14

    def test_divergence_center_not_read(self):
        assert not get_benchmark("divergence").kernel.pattern.reads_origin

    def test_gradient_center_not_read(self):
        assert not get_benchmark("gradient").kernel.pattern.reads_origin

    def test_fig4_order_starts_with_blur(self):
        assert TEST_BENCHMARKS[0].label() == "blur-1024x1024"
        assert TEST_BENCHMARKS[1].label() == "blur-1024x768"

    def test_all_labels_resolvable(self):
        for inst in TEST_BENCHMARKS:
            assert benchmark_by_id(inst.label()) == inst

    def test_divergence_per_axis_lines(self):
        k = get_benchmark("divergence").kernel
        assert len(k.buffer_patterns) == 3
        for axis, pattern in enumerate(k.buffer_patterns):
            for off in pattern.offsets:
                nonzero = [i for i, c in enumerate(off) if c != 0]
                assert nonzero == [axis]
