"""Tests for StencilInstance validation and derived quantities."""

import pytest

from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian


@pytest.fixture()
def lap():
    return StencilKernel.single_buffer("lap", laplacian(3, 1), "double")


@pytest.fixture()
def blur():
    return StencilKernel.single_buffer("blur", hypercube(2, 2), "float")


class TestValidation:
    def test_2d_size_promoted(self, blur):
        q = StencilInstance(blur, (128, 128))
        assert q.size == (128, 128, 1)

    def test_2d_kernel_rejects_depth(self, blur):
        with pytest.raises(ValueError, match="sz = 1"):
            StencilInstance(blur, (128, 128, 4))

    def test_too_small_for_halo(self, blur):
        with pytest.raises(ValueError, match="too small"):
            StencilInstance(blur, (4, 128))

    def test_nonpositive_size(self, lap):
        with pytest.raises(ValueError):
            StencilInstance(lap, (0, 64, 64))

    def test_wrong_rank(self, lap):
        with pytest.raises(ValueError):
            StencilInstance(lap, (64,))


class TestDerived:
    def test_num_points(self, lap):
        assert StencilInstance(lap, (64, 64, 64)).num_points == 64**3

    def test_flops(self, lap):
        q = StencilInstance(lap, (64, 64, 64))
        assert q.flops == 64**3 * 14

    def test_min_bytes(self, lap):
        q = StencilInstance(lap, (64, 64, 64))
        assert q.min_bytes == 64**3 * 16

    def test_label_3d(self, lap):
        assert StencilInstance(lap, (128, 128, 128)).label() == "lap-128x128x128"

    def test_label_2d(self, blur):
        assert StencilInstance(blur, (1024, 768)).label() == "blur-1024x768"

    def test_hashable(self, lap):
        a = StencilInstance(lap, (64, 64, 64))
        b = StencilInstance(lap, (64, 64, 64))
        assert a == b and hash(a) == hash(b)

    def test_dims_follow_kernel(self, lap, blur):
        assert StencilInstance(lap, (64, 64, 64)).dims == 3
        assert StencilInstance(blur, (64, 64)).dims == 2
