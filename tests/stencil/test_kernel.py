"""Tests for StencilKernel static features."""

import pytest

from repro.stencil.kernel import DType, StencilKernel
from repro.stencil.pattern import StencilPattern
from repro.stencil.shapes import hypercube, laplacian, line


class TestDType:
    def test_itemsize(self):
        assert DType.FLOAT.itemsize == 4
        assert DType.DOUBLE.itemsize == 8

    def test_feature_encoding(self):
        assert DType.FLOAT.feature == 0.0
        assert DType.DOUBLE.feature == 1.0

    def test_parse_string(self):
        assert DType.parse("Float") is DType.FLOAT
        assert DType.parse("DOUBLE") is DType.DOUBLE

    def test_parse_passthrough(self):
        assert DType.parse(DType.FLOAT) is DType.FLOAT

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            DType.parse("int")


class TestConstruction:
    def test_needs_pattern(self):
        with pytest.raises(ValueError, match="at least one buffer"):
            StencilKernel("k", ())

    def test_dtype_coerced(self):
        k = StencilKernel.single_buffer("k", laplacian(3, 1), "double")
        assert k.dtype is DType.DOUBLE

    def test_negative_extra_reads(self):
        with pytest.raises(ValueError):
            StencilKernel("k", (laplacian(3, 1),), extra_point_reads=-1)

    def test_space_dims_override(self):
        flat = line(3, 2)  # geometrically flat pattern
        k = StencilKernel("k", (flat,), space_dims=3)
        assert k.dims == 3

    def test_space_dims_too_small(self):
        with pytest.raises(ValueError, match="smaller than pattern"):
            StencilKernel("k", (laplacian(3, 1),), space_dims=2)

    def test_space_dims_invalid(self):
        with pytest.raises(ValueError):
            StencilKernel("k", (laplacian(3, 1),), space_dims=4)

    def test_replicated(self):
        k = StencilKernel.replicated("k", laplacian(3, 1), buffers=3)
        assert k.num_buffers == 3
        assert k.pattern.counts[(0, 0, 0)] == 3


class TestDerivedFeatures:
    def test_laplacian_flops(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        assert k.reads_per_point == 7
        assert k.flops_per_point == 14

    def test_extra_reads_counted(self):
        k = StencilKernel("wave", (laplacian(3, 2),), extra_point_reads=1)
        assert k.reads_per_point == 14

    def test_bytes_per_point(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        assert k.bytes_per_point == 16  # one input + one output stream
        k3 = StencilKernel.replicated("k", laplacian(3, 1), 3, "float")
        assert k3.bytes_per_point == 16  # (3 + 1) * 4

    def test_combined_pattern_multibuffer(self):
        x = StencilPattern.from_points([(-1, 0, 0), (1, 0, 0)])
        y = StencilPattern.from_points([(0, -1, 0), (0, 1, 0)])
        k = StencilKernel("div", (x, y), "double")
        assert k.pattern.num_points == 4
        assert k.radius == 1

    def test_working_planes(self):
        k = StencilKernel.single_buffer("lap2", laplacian(3, 2), "float")
        assert k.working_planes() == 5

    def test_2d_kernel_dims(self):
        k = StencilKernel.single_buffer("blur", hypercube(2, 2), "float")
        assert k.dims == 2

    def test_repr_mentions_name(self):
        k = StencilKernel.single_buffer("blur", hypercube(2, 1), "float")
        assert "blur" in repr(k)

    def test_kernels_hashable(self):
        a = StencilKernel.single_buffer("k", laplacian(3, 1), "double")
        b = StencilKernel.single_buffer("k", laplacian(3, 1), "double")
        assert a == b and hash(a) == hash(b)
