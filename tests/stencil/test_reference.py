"""Tests for the numpy reference executor (the semantics oracle itself)."""

import numpy as np
import pytest

from repro.stencil.grid import Grid
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import StencilPattern
from repro.stencil.reference import (
    apply_kernel,
    apply_stencil,
    default_weights,
    jacobi_reference,
)
from repro.stencil.shapes import laplacian


class TestDefaultWeights:
    def test_origin_weight_is_one(self):
        p = laplacian(3, 1)
        assert default_weights(p)[(0, 0, 0)] == 1.0

    def test_distance_decay(self):
        p = laplacian(3, 2)
        w = default_weights(p)
        assert w[(1, 0, 0)] > w[(2, 0, 0)]

    def test_covers_all_offsets(self):
        p = laplacian(3, 2)
        assert set(default_weights(p)) == set(p.offsets)


class TestApplyStencil:
    def test_identity_stencil(self):
        p = StencilPattern.from_points([(0, 0, 0)])
        g = Grid.random((5, 4, 3), halo=0, rng=0)
        out = apply_stencil(g, p, weights={(0, 0, 0): 1.0})
        assert np.allclose(out.interior, g.interior)

    def test_shift_stencil_moves_data(self):
        p = StencilPattern.from_points([(1, 0, 0)])
        g = Grid.zeros((4, 3, 3), halo=1)
        g.interior[2, 1, 1] = 3.0
        out = apply_stencil(g, p, weights={(1, 0, 0): 2.0})
        assert out.interior[1, 1, 1] == 6.0

    def test_against_manual_laplacian(self):
        p = laplacian(3, 1)
        w = {off: 1.0 for off in p.offsets}
        g = Grid.random((6, 6, 6), halo=1, rng=3)
        out = apply_stencil(g, p, weights=w)
        x, y, z = 2, 3, 1
        h = 1
        d = g.data
        manual = (
            d[x + h, y + h, z + h]
            + d[x + h + 1, y + h, z + h]
            + d[x + h - 1, y + h, z + h]
            + d[x + h, y + h + 1, z + h]
            + d[x + h, y + h - 1, z + h]
            + d[x + h, y + h, z + h + 1]
            + d[x + h, y + h, z + h - 1]
        )
        assert np.isclose(out.interior[x, y, z], manual)

    def test_out_reuse(self):
        p = laplacian(3, 1)
        g = Grid.random((5, 5, 5), halo=1, rng=1)
        out = Grid.zeros((5, 5, 5), halo=1)
        result = apply_stencil(g, p, out=out)
        assert result is out

    def test_linearity(self):
        """Stencil application is linear in the input field."""
        p = laplacian(3, 1)
        a = Grid.random((5, 5, 5), halo=1, rng=1)
        b = Grid.random((5, 5, 5), halo=1, rng=2)
        summed = Grid(a.data + b.data, halo=1)
        out_sum = apply_stencil(summed, p)
        out_a = apply_stencil(a, p)
        out_b = apply_stencil(b, p)
        assert np.allclose(out_sum.interior, out_a.interior + out_b.interior)


class TestApplyKernel:
    def test_buffer_count_checked(self):
        k = StencilKernel.replicated("k", laplacian(3, 1), 2, "double")
        g = Grid.random((5, 5, 5), halo=1, rng=0)
        with pytest.raises(ValueError, match="2 buffers"):
            apply_kernel(k, [g])

    def test_multibuffer_sums_contributions(self):
        x = StencilPattern.from_points([(0, 0, 0)])
        k = StencilKernel("two", (x, x), "double")
        a = Grid.random((4, 4, 4), halo=0, rng=1)
        b = Grid.random((4, 4, 4), halo=0, rng=2)
        out = apply_kernel(k, [a, b], weights=[{(0, 0, 0): 1.0}, {(0, 0, 0): 1.0}])
        assert np.allclose(out.interior, a.interior + b.interior)


class TestJacobi:
    def test_requires_positive_sweeps(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        g = Grid.random((5, 5, 5), halo=1, rng=0)
        with pytest.raises(ValueError):
            jacobi_reference(k, [g], sweeps=0)

    def test_two_sweeps_differ_from_one(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        g = Grid.random((6, 6, 6), halo=1, rng=5)
        one = jacobi_reference(k, [g.copy()], sweeps=1)
        two = jacobi_reference(k, [g.copy()], sweeps=2)
        assert not np.allclose(one.interior, two.interior)

    def test_mean_preserving_weights_smooth(self):
        """A normalized Laplacian sweep keeps values bounded (smoothing)."""
        p = laplacian(3, 1)
        k = StencilKernel.single_buffer("lap", p, "double")
        w = [{off: 1.0 / 7.0 for off in p.offsets}]
        g = Grid.random((8, 8, 8), halo=1, rng=6)
        g.fill_halo_periodic()
        out = jacobi_reference(k, [g], sweeps=3, weights=w)
        assert out.interior.max() <= g.interior.max() + 1e-12
        assert out.interior.min() >= g.interior.min() - 1e-12
