"""Tests for StencilExecution tiles and hashing."""

import pytest

from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian
from repro.tuning.vector import TuningVector


@pytest.fixture()
def q3():
    k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    return StencilInstance(k, (64, 64, 64))


class TestValidation:
    def test_2d_requires_bz1(self):
        k = StencilKernel.single_buffer("blur", hypercube(2, 1), "float")
        q = StencilInstance(k, (64, 64))
        with pytest.raises(ValueError, match="bz = 1"):
            StencilExecution(q, TuningVector(16, 16, 4))

    def test_type_checks(self, q3):
        with pytest.raises(TypeError):
            StencilExecution(q3, (16, 16, 16, 0, 1))  # type: ignore[arg-type]


class TestTiles:
    def test_exact_division(self, q3):
        e = StencilExecution(q3, TuningVector(16, 8, 4, 0, 1))
        assert e.tiles == (4, 8, 16)
        assert e.num_tiles == 512

    def test_ceil_division(self, q3):
        e = StencilExecution(q3, TuningVector(48, 64, 64, 0, 1))
        assert e.tiles == (2, 1, 1)

    def test_oversized_block_clipped(self, q3):
        e = StencilExecution(q3, TuningVector(1024, 1024, 1024, 0, 1))
        assert e.tiles == (1, 1, 1)
        assert e.effective_block == (64, 64, 64)

    def test_kernel_passthrough(self, q3):
        e = StencilExecution(q3, TuningVector(16, 16, 16))
        assert e.kernel is q3.kernel


class TestHash:
    def test_stable_across_objects(self, q3):
        a = StencilExecution(q3, TuningVector(16, 8, 4, 2, 1))
        b = StencilExecution(q3, TuningVector(16, 8, 4, 2, 1))
        assert a.stable_hash() == b.stable_hash()

    def test_tuning_changes_hash(self, q3):
        a = StencilExecution(q3, TuningVector(16, 8, 4, 2, 1))
        b = StencilExecution(q3, TuningVector(16, 8, 4, 2, 2))
        assert a.stable_hash() != b.stable_hash()

    def test_size_changes_hash(self):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        t = TuningVector(16, 8, 4, 2, 1)
        a = StencilExecution(StencilInstance(k, (64, 64, 64)), t)
        b = StencilExecution(StencilInstance(k, (128, 128, 128)), t)
        assert a.stable_hash() != b.stable_hash()

    def test_label(self, q3):
        e = StencilExecution(q3, TuningVector(16, 8, 4, 2, 1))
        assert "lap-64x64x64" in e.label()
