"""Executes every doctest in the library.

The public API's docstring examples are part of the documentation
deliverable; this test keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules() -> list[str]:
    names = []
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
