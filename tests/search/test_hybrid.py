"""Tests for the model-seeded search (the paper's future-work hybrid)."""

import pytest

from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.machine.executor import SimulatedMachine
from repro.ranking.partial import RankingGroups
from repro.search.hybrid import ModelSeededSearch
from repro.search.random_search import RandomSearch
from repro.stencil.execution import StencilExecution
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space

import numpy as np


@pytest.fixture(scope="module")
def trained_model():
    """A model trained on a few hundred simulated laplacian-family points."""
    from repro.stencil.instance import StencilInstance
    from repro.stencil.kernel import StencilKernel
    from repro.stencil.shapes import laplacian

    machine = SimulatedMachine(seed=21)
    enc = FeatureEncoder()
    rows, times, gids = [], [], []
    rng = np.random.default_rng(2)
    gid = 0
    for radius, dtype in [(1, "double"), (2, "float"), (3, "double")]:
        k = StencilKernel.single_buffer(f"lap{radius}", laplacian(3, radius), dtype)
        for size in [(64, 64, 64), (128, 128, 128)]:
            inst = StencilInstance(k, size)
            tunings = patus_space(3).random_vectors(60, rng=rng)
            rows.append(enc.encode_batch(inst, tunings))
            times.append(
                np.array(
                    [machine.run_time(StencilExecution(inst, t)) for t in tunings]
                )
            )
            gids.append(np.full(60, gid))
            gid += 1
    data = RankingGroups(np.vstack(rows), np.concatenate(times), np.concatenate(gids))
    model = RankSVM(RankSVMConfig()).fit(data)
    return model, enc


class TestModelSeededSearch:
    def test_respects_budget(self, trained_model):
        model, enc = trained_model
        s = ModelSeededSearch(
            patus_space(3), SimulatedMachine(seed=22), model, enc, seed=0
        )
        result = s.tune(benchmark_by_id("laplacian-128x128x128"), budget=50)
        assert result.evaluations == 50

    def test_seeded_start_beats_random_start_early(self, trained_model):
        """With a decent model, the first evaluations are already good."""
        model, enc = trained_model
        inst = benchmark_by_id("laplacian-256x256x256")
        machine = SimulatedMachine(seed=23)
        hybrid = ModelSeededSearch(patus_space(3), machine.fork(), model, enc, seed=1)
        random = RandomSearch(patus_space(3), machine.fork(), seed=1)
        h = hybrid.tune(inst, budget=32)
        r = random.tune(inst, budget=32)
        h_first = min(rec.time for rec in h.history[:8])
        r_first = min(rec.time for rec in r.history[:8])
        assert h_first < 1.1 * r_first

    def test_deterministic(self, trained_model):
        model, enc = trained_model
        inst = benchmark_by_id("laplacian-128x128x128")
        a = ModelSeededSearch(
            patus_space(3), SimulatedMachine(seed=24), model, enc, seed=5
        ).tune(inst, 30)
        b = ModelSeededSearch(
            patus_space(3), SimulatedMachine(seed=24), model, enc, seed=5
        ).tune(inst, 30)
        assert [x.tuning for x in a.history] == [x.tuning for x in b.history]
