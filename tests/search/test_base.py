"""Tests for the search budget/caching/history contract."""

import numpy as np
import pytest

from repro.search.base import SearchAlgorithm
from repro.search.random_search import RandomSearch
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space
from repro.tuning.vector import TuningVector


@pytest.fixture()
def inst():
    return benchmark_by_id("laplacian-128x128x128")


@pytest.fixture()
def search(machine):
    return RandomSearch(patus_space(3), machine, seed=0)


class TestBudget:
    def test_exact_budget_spent(self, search, inst):
        result = search.tune(inst, budget=40)
        assert result.evaluations == 40

    def test_machine_counter_bounded_by_budget(self, machine, inst):
        """The machine only measures distinct variants (cache re-serves
        duplicates), so its counter never exceeds the charged budget."""
        s = RandomSearch(patus_space(3), machine, seed=0)
        result = s.tune(inst, budget=25)
        assert result.evaluations == 25
        assert machine.evaluations <= 25

    def test_budget_validated(self, search, inst):
        with pytest.raises(ValueError):
            search.tune(inst, budget=0)

    def test_dims_mismatch(self, machine):
        s = RandomSearch(patus_space(2), machine, seed=0)
        with pytest.raises(ValueError, match="3-D"):
            s.tune(benchmark_by_id("laplacian-128x128x128"), budget=4)


class TestHistory:
    def test_indices_sequential(self, search, inst):
        result = search.tune(inst, budget=20)
        assert [r.index for r in result.history] == list(range(20))

    def test_best_is_minimum(self, search, inst):
        result = search.tune(inst, budget=30)
        times = [r.time for r in result.history]
        assert result.best_time == min(times)
        assert result.best_record.time == result.best_time

    def test_wall_clock_positive(self, search, inst):
        result = search.tune(inst, budget=10)
        assert result.total_wall_s > 0

    def test_best_curve_monotone(self, search, inst):
        result = search.tune(inst, budget=64)
        curve = result.best_curve()
        keys = sorted(curve)
        assert keys == [1, 2, 4, 8, 16, 32, 64]
        vals = [curve[k] for k in keys]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_best_curve_clamps_to_history(self, search, inst):
        result = search.tune(inst, budget=10)
        curve = result.best_curve([1, 1000])
        assert curve[1000] == result.best_time

    def test_empty_history_raises(self):
        from repro.search.base import SearchResult

        with pytest.raises(ValueError):
            SearchResult("x", "y").best_record


class TestCache:
    def test_duplicates_consume_budget_but_measure_once(self, machine, inst):
        """Re-proposals are iterations (paper: fixed iteration count) but
        the machine is only asked to measure each distinct variant once."""

        class Repeater(SearchAlgorithm):
            name = "repeater"

            def _run(self, instance, budget):
                t = TuningVector(64, 16, 16, 2, 1)
                while True:
                    self.evaluate(t)

        s = Repeater(patus_space(3), machine, seed=0)
        result = s.tune(inst, budget=10)
        assert result.evaluations == 10
        assert len({r.tuning for r in result.history}) == 1
        assert machine.evaluations == 1

    def test_converged_population_terminates(self, machine, inst):
        """A search that only ever proposes one config must terminate
        promptly instead of spinning outside the budget (regression test
        for the generational-GA convergence stall)."""
        import time

        class Stuck(SearchAlgorithm):
            name = "stuck"

            def _run(self, instance, budget):
                t = TuningVector(8, 8, 8, 0, 1)
                while True:
                    self.evaluate(t)

        start = time.perf_counter()
        Stuck(patus_space(3), machine, seed=0).tune(inst, budget=2000)
        assert time.perf_counter() - start < 5.0

    def test_cached_value_consistent(self, machine, inst):
        s = RandomSearch(patus_space(3), machine, seed=0)
        s._instance = inst
        s._budget = 5
        from repro.search.base import SearchResult

        s._result = SearchResult("random", inst.label())
        t = TuningVector(64, 16, 16, 2, 1)
        assert s.evaluate(t) == s.evaluate(t)


class TestDeterminism:
    def test_same_seed_same_history(self, inst):
        from repro.machine.executor import SimulatedMachine

        a = RandomSearch(patus_space(3), SimulatedMachine(seed=3), seed=5).tune(inst, 20)
        b = RandomSearch(patus_space(3), SimulatedMachine(seed=3), seed=5).tune(inst, 20)
        assert [r.tuning for r in a.history] == [r.tuning for r in b.history]

    def test_different_seed_different_proposals(self, inst):
        from repro.machine.executor import SimulatedMachine

        a = RandomSearch(patus_space(3), SimulatedMachine(seed=3), seed=5).tune(inst, 20)
        b = RandomSearch(patus_space(3), SimulatedMachine(seed=3), seed=6).tune(inst, 20)
        assert [r.tuning for r in a.history] != [r.tuning for r in b.history]
