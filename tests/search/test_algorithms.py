"""Behavioral tests for the four paper search algorithms + random + bandit."""

import numpy as np
import pytest

from repro.machine.executor import SimulatedMachine
from repro.search.bandit import BanditMetaSearch
from repro.search.differential import DifferentialEvolution
from repro.search.evolution_strategy import EvolutionStrategy
from repro.search.genetic import GenerationalGA
from repro.search.random_search import RandomSearch
from repro.search.steady_state import SteadyStateGA
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space

ALGORITHMS = [
    RandomSearch,
    GenerationalGA,
    SteadyStateGA,
    DifferentialEvolution,
    EvolutionStrategy,
    BanditMetaSearch,
]


@pytest.fixture(scope="module")
def inst():
    return benchmark_by_id("laplacian-128x128x128")


@pytest.fixture(scope="module")
def shared_machine():
    return SimulatedMachine(seed=11)


class TestAllAlgorithms:
    @pytest.mark.parametrize("cls", ALGORITHMS)
    def test_respects_budget(self, cls, inst, shared_machine):
        s = cls(patus_space(3), shared_machine.fork(), seed=1)
        result = s.tune(inst, budget=60)
        assert result.evaluations == 60

    @pytest.mark.parametrize("cls", ALGORITHMS)
    def test_legal_proposals_only(self, cls, inst, shared_machine):
        space = patus_space(3)
        s = cls(space, shared_machine.fork(), seed=2)
        result = s.tune(inst, budget=60)
        for record in result.history:
            assert space.contains(record.tuning)

    @pytest.mark.parametrize("cls", ALGORITHMS)
    def test_deterministic(self, cls, inst):
        a = cls(patus_space(3), SimulatedMachine(seed=4), seed=7).tune(inst, 40)
        b = cls(patus_space(3), SimulatedMachine(seed=4), seed=7).tune(inst, 40)
        assert [r.tuning for r in a.history] == [r.tuning for r in b.history]

    @pytest.mark.parametrize("cls", [GenerationalGA, SteadyStateGA, DifferentialEvolution, EvolutionStrategy])
    def test_improves_over_initial_population(self, cls, inst, shared_machine):
        s = cls(patus_space(3), shared_machine.fork(), seed=3)
        result = s.tune(inst, budget=200)
        init = min(r.time for r in result.history[:16])
        assert result.best_time <= init

    @pytest.mark.parametrize("cls", [GenerationalGA, SteadyStateGA, DifferentialEvolution, EvolutionStrategy])
    def test_beats_or_matches_random_on_average(self, cls, inst, shared_machine):
        """Over a few seeds, evolutionary search must not lose badly to random."""
        ratios = []
        for seed in range(3):
            ev = cls(patus_space(3), shared_machine.fork(), seed=seed).tune(inst, 150)
            rnd = RandomSearch(patus_space(3), shared_machine.fork(), seed=seed).tune(
                inst, 150
            )
            ratios.append(ev.best_time / rnd.best_time)
        assert np.mean(ratios) < 1.15

    @pytest.mark.parametrize("cls", ALGORITHMS)
    def test_2d_space_supported(self, cls, shared_machine):
        inst2d = benchmark_by_id("edge-512x512")
        s = cls(patus_space(2), shared_machine.fork(), seed=5)
        result = s.tune(inst2d, budget=40)
        assert result.evaluations == 40
        assert all(r.tuning.bz == 1 for r in result.history)


class TestConvergenceQuality:
    def test_ga_with_big_budget_near_oracle(self, inst, shared_machine):
        """GA-300 should land within 25% of the oracle best over a sample."""
        machine = shared_machine.fork()
        ga = GenerationalGA(patus_space(3), machine, seed=9)
        result = ga.tune(inst, budget=300)
        pool = patus_space(3).random_vectors(3000, rng=0)
        oracle_best = min(machine.true_times(inst, pool))
        assert result.best_time < 1.25 * oracle_best

    def test_longer_budget_no_worse(self, inst, shared_machine):
        s_short = GenerationalGA(patus_space(3), shared_machine.fork(), seed=10)
        s_long = GenerationalGA(patus_space(3), shared_machine.fork(), seed=10)
        short = s_short.tune(inst, budget=64)
        long = s_long.tune(inst, budget=256)
        assert long.best_time <= short.best_time + 1e-12
