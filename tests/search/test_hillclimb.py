"""Tests for the hill-climbing baseline."""

import pytest

from repro.machine.executor import SimulatedMachine
from repro.search.hillclimb import HillClimber
from repro.search.random_search import RandomSearch
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space


@pytest.fixture(scope="module")
def inst():
    return benchmark_by_id("laplacian-128x128x128")


class TestHillClimber:
    def test_respects_budget(self, inst):
        s = HillClimber(patus_space(3), SimulatedMachine(seed=0), seed=0)
        assert s.tune(inst, budget=50).evaluations == 50

    def test_deterministic(self, inst):
        a = HillClimber(patus_space(3), SimulatedMachine(seed=1), seed=2).tune(inst, 40)
        b = HillClimber(patus_space(3), SimulatedMachine(seed=1), seed=2).tune(inst, 40)
        assert [r.tuning for r in a.history] == [r.tuning for r in b.history]

    def test_legal_proposals(self, inst):
        space = patus_space(3)
        s = HillClimber(space, SimulatedMachine(seed=2), seed=3)
        for record in s.tune(inst, budget=60).history:
            assert space.contains(record.tuning)

    def test_competitive_with_random(self, inst):
        import numpy as np

        ratios = []
        for seed in range(3):
            machine = SimulatedMachine(seed=40 + seed)
            hc = HillClimber(patus_space(3), machine.fork(), seed=seed).tune(inst, 120)
            rs = RandomSearch(patus_space(3), machine.fork(), seed=seed).tune(inst, 120)
            ratios.append(hc.best_time / rs.best_time)
        assert np.mean(ratios) < 1.2

    def test_restarts_do_not_lose_best(self, inst):
        s = HillClimber(patus_space(3), SimulatedMachine(seed=5), seed=6)
        s.patience = 4  # force many restarts
        result = s.tune(inst, budget=100)
        times = [r.time for r in result.history]
        assert result.best_time == min(times)
