"""Tests for the compile-time workflow (DSL in → tuned binary out)."""

import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.workflow import CompilationWorkflow
from repro.codegen.dsl import kernel_to_dsl
from repro.learn.ranksvm import RankSVMConfig
from repro.machine.executor import SimulatedMachine
from repro.stencil.suite import BENCHMARKS


@pytest.fixture(scope="module")
def workflow(tiny_training_set):
    tuner = OrdinalAutotuner(config=RankSVMConfig(seed=1)).train(tiny_training_set)
    return CompilationWorkflow(tuner, SimulatedMachine(seed=5))


class TestTuneKernel:
    def test_end_to_end(self, workflow):
        kernel = BENCHMARKS["laplacian"].kernel
        binary = workflow.tune_kernel(kernel, (128, 128, 128))
        assert binary.tuning == workflow.autotuner.best(binary.instance)
        assert "#pragma omp" in binary.variant.c_source
        assert binary.compile_seconds > 0
        assert binary.rank_seconds > 0

    def test_binary_cache_on_second_tune(self, workflow):
        kernel = BENCHMARKS["gradient"].kernel
        first = workflow.tune_kernel(kernel, (128, 128, 128))
        second = workflow.tune_kernel(kernel, (256, 256, 256))
        if second.tuning.effective_unroll == first.tuning.effective_unroll:
            assert second.compile_seconds == 0.0

    def test_run_executes_binary(self, workflow):
        kernel = BENCHMARKS["edge"].kernel
        binary = workflow.tune_kernel(kernel, (512, 512, 1))
        measurement = workflow.run(binary)
        assert measurement.time > 0
        assert measurement.execution == binary.execution()


class TestTuneKernelsBatch:
    def test_matches_per_kernel_flow(self, workflow):
        specs = [
            (BENCHMARKS["laplacian"].kernel, (128, 128, 128)),
            (BENCHMARKS["blur"].kernel, (1024, 768, 1)),
            (BENCHMARKS["edge"].kernel, (512, 512, 1)),
        ]
        batched = workflow.tune_kernels(specs)
        assert [b.tuning for b in batched] == [
            workflow.tune_kernel(k, size).tuning for k, size in specs
        ]

    def test_per_spec_candidates(self, workflow):
        kernel = BENCHMARKS["laplacian"].kernel
        cands = workflow.autotuner.tune(
            BENCHMARKS["laplacian"].instance((128, 128, 128)), top_k=5
        )
        [binary] = workflow.tune_kernels(
            [(kernel, (128, 128, 128))], candidates=[cands]
        )
        assert binary.tuning in cands

    def test_candidate_count_mismatch_rejected(self, workflow):
        with pytest.raises(ValueError, match="candidate sets"):
            workflow.tune_kernels(
                [(BENCHMARKS["laplacian"].kernel, (128, 128, 128))], candidates=[]
            )


class TestTuneDsl:
    def test_dsl_entry_point(self, workflow):
        kernel = BENCHMARKS["laplacian"].kernel
        text = kernel_to_dsl(kernel)
        binary = workflow.tune_dsl(text, (128, 128, 128))
        assert binary.instance.kernel.buffer_patterns == kernel.buffer_patterns

    def test_dsl_and_kernel_agree(self, workflow):
        kernel = BENCHMARKS["wave"].kernel
        via_kernel = workflow.tune_kernel(kernel, (128, 128, 128))
        via_dsl = workflow.tune_dsl(kernel_to_dsl(kernel), (128, 128, 128))
        assert via_kernel.tuning == via_dsl.tuning
