"""Tests for the TrainingSet artifact."""

import numpy as np
import pytest

from repro.autotune.dataset import TrainingSet
from repro.ranking.partial import RankingGroups


@pytest.fixture()
def small_set():
    rng = np.random.default_rng(0)
    X = rng.random((60, 5))
    times = rng.random(60) + 0.1
    groups = np.repeat(np.arange(6), 10)
    return TrainingSet(
        data=RankingGroups(X, times, groups),
        group_labels={i: f"inst-{i}" for i in range(6)},
        generation_wall_s=120.0,
        compile_wall_s=3600.0,
        encoder_fingerprint="fp-1",
    )


class TestPersistence:
    def test_roundtrip(self, small_set, tmp_path):
        path = tmp_path / "ts.npz"
        small_set.save(path)
        loaded = TrainingSet.load(path)
        assert np.array_equal(loaded.data.X, small_set.data.X)
        assert np.array_equal(loaded.data.times, small_set.data.times)
        assert np.array_equal(loaded.data.groups, small_set.data.groups)
        assert loaded.group_labels == small_set.group_labels
        assert loaded.generation_wall_s == 120.0
        assert loaded.compile_wall_s == 3600.0
        assert loaded.encoder_fingerprint == "fp-1"

    def test_summary_mentions_counts(self, small_set):
        s = small_set.summary()
        assert "60 points" in s and "6 instances" in s


class TestSubset:
    def test_subset_size_close(self, small_set):
        sub = small_set.subset_points(30)
        assert 24 <= len(sub) <= 36

    def test_every_group_survives(self, small_set):
        sub = small_set.subset_points(14)
        assert sub.num_instances == 6

    def test_minimum_two_per_group(self, small_set):
        sub = small_set.subset_points(12)
        for _, rows in sub.data.iter_groups():
            assert rows.size >= 2

    def test_oversized_request_returns_self(self, small_set):
        assert small_set.subset_points(10_000) is small_set

    def test_deterministic(self, small_set):
        a = small_set.subset_points(30, rng_seed=1)
        b = small_set.subset_points(30, rng_seed=1)
        assert np.array_equal(a.data.times, b.data.times)

    def test_generation_time_prorated(self, small_set):
        sub = small_set.subset_points(30)
        assert sub.generation_wall_s == pytest.approx(
            120.0 * len(sub) / 60, rel=1e-9
        )
        assert sub.compile_wall_s == 3600.0  # compile cost is not per-point

    def test_subset_rows_come_from_parent(self, small_set):
        sub = small_set.subset_points(30)
        parent_rows = {tuple(r) for r in small_set.data.X}
        assert all(tuple(r) in parent_rows for r in sub.data.X)
