"""Tests for the standalone OrdinalAutotuner (§V-C)."""

import numpy as np
import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVMConfig
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.tuning.space import patus_space


@pytest.fixture(scope="module")
def trained(tiny_training_set):
    return OrdinalAutotuner(config=RankSVMConfig(seed=0)).train(tiny_training_set)


class TestTraining:
    def test_train_records_wall(self, trained):
        assert trained.last_train_seconds > 0

    def test_fingerprint_guard(self, tiny_training_set):
        tuner = OrdinalAutotuner(encoder=FeatureEncoder(interactions=False))
        with pytest.raises(ValueError, match="encoded with"):
            tuner.train(tiny_training_set)

    def test_untrained_refuses_inference(self):
        with pytest.raises(RuntimeError, match="no trained model"):
            OrdinalAutotuner().best(benchmark_by_id("blur-1024x768"))


class TestInference:
    def test_rank_candidates_permutation(self, trained):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = patus_space(3).random_vectors(50, rng=0)
        ranked = trained.rank_candidates(inst, cands)
        assert sorted(map(tuple, ranked)) == sorted(map(tuple, cands))

    def test_rank_matches_scores(self, trained):
        inst = benchmark_by_id("laplacian-128x128x128")
        cands = patus_space(3).random_vectors(50, rng=1)
        scores = trained.score_candidates(inst, cands)
        ranked = trained.rank_candidates(inst, cands)
        best = ranked[0]
        assert scores[cands.index(best)] == scores.max()

    def test_default_candidates_are_presets(self, trained):
        inst = benchmark_by_id("edge-512x512")
        pick = trained.best(inst)
        assert pick in set(preset_candidates(2))

    def test_top_k(self, trained):
        inst = benchmark_by_id("laplacian-128x128x128")
        top3 = trained.tune(inst, top_k=3)
        assert len(top3) == 3
        assert len(set(top3)) == 3

    @pytest.mark.parametrize("top_k", [0, -1, -5])
    def test_non_positive_top_k_rejected(self, trained, top_k):
        inst = benchmark_by_id("laplacian-128x128x128")
        with pytest.raises(ValueError, match="top_k"):
            trained.tune(inst, top_k=top_k)

    def test_rank_many_matches_per_instance_ranking(self, trained):
        labels = ["laplacian-128x128x128", "blur-1024x768", "edge-512x512"]
        requests = [
            (q, patus_space(q.dims).random_vectors(40, rng=i))
            for i, q in enumerate(benchmark_by_id(l) for l in labels)
        ]
        fused = trained.rank_many(requests)
        assert fused == [
            trained.rank_candidates(q, cands) for q, cands in requests
        ]

    def test_rank_many_empty(self, trained):
        assert trained.rank_many([]) == []
        assert trained.score_candidate_sets([]) == []

    def test_score_candidate_sets_aligned(self, trained):
        labels = ["laplacian-128x128x128", "edge-512x512"]
        requests = [
            (benchmark_by_id(l), patus_space(benchmark_by_id(l).dims).random_vectors(12, rng=9))
            for l in labels
        ]
        fused = trained.score_candidate_sets(requests)
        for (q, cands), scores in zip(requests, fused):
            assert np.array_equal(scores, trained.score_candidates(q, cands))

    def test_rank_seconds_recorded(self, trained):
        inst = benchmark_by_id("laplacian-128x128x128")
        trained.score_candidates(inst, preset_candidates(3))
        assert 0 < trained.last_rank_seconds < 1.0

    def test_pick_not_in_worst_quartile(self, trained, session_machine):
        """Even the tiny ~500-point fixture model must avoid bad configs.

        (Strong quality claims — pick ≈ GA quality — are asserted by the
        integration tests and Fig. 4 bench, which train on larger sets.)
        """
        inst = benchmark_by_id("laplacian-256x256x256")
        cands = preset_candidates(3)
        pick = trained.best(inst)
        from repro.stencil.execution import StencilExecution

        pick_t = session_machine.true_time(StencilExecution(inst, pick))
        sample = cands[:: len(cands) // 200]
        times = session_machine.true_times(inst, sample)
        assert pick_t < np.percentile(times, 75)


class TestPersistence:
    def test_save_load_same_decisions(self, trained, tmp_path):
        path = str(tmp_path / "tuner.npz")
        trained.save(path)
        clone = OrdinalAutotuner().load(path)
        inst = benchmark_by_id("gradient-128x128x128")
        assert clone.best(inst) == trained.best(inst)

    def test_load_rejects_mismatched_encoder(self, trained, tmp_path):
        path = str(tmp_path / "tuner.npz")
        trained.save(path)
        other = OrdinalAutotuner(encoder=FeatureEncoder(interactions=False))
        with pytest.raises(ValueError, match="fingerprint"):
            other.load(path)
