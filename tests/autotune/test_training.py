"""Tests for the Fig. 3 training pipeline."""

import numpy as np
import pytest

from repro.autotune.training import (
    SIZES_2D,
    SIZES_3D,
    TrainingSetBuilder,
    generate_training_kernels,
    training_instances,
)
from repro.machine.executor import SimulatedMachine


class TestCorpus:
    def test_sixty_codes(self):
        assert len(generate_training_kernels()) == 60

    def test_names_unique(self):
        names = [k.name for k in generate_training_kernels()]
        assert len(set(names)) == 60

    def test_both_dimensionalities(self):
        kernels = generate_training_kernels()
        assert {k.dims for k in kernels} == {2, 3}

    def test_all_four_shapes_present(self):
        names = " ".join(k.name for k in generate_training_kernels())
        for shape in ("line", "hyperplane", "hypercube", "laplacian"):
            assert shape in names

    def test_dtypes_and_buffers_vary(self):
        kernels = generate_training_kernels()
        assert {k.dtype.value for k in kernels} == {"float", "double"}
        assert {k.num_buffers for k in kernels} == {1, 2}

    def test_instance_count_near_200(self):
        instances = training_instances()
        assert len(instances) == 210  # paper: "total number of instances q is 200"

    def test_paper_sizes_used(self):
        instances = training_instances()
        sizes_3d = {q.size for q in instances if q.dims == 3}
        sizes_2d = {q.size for q in instances if q.dims == 2}
        assert sizes_3d == set(SIZES_3D)
        assert sizes_2d == set(SIZES_2D)

    def test_radius_within_encoder_limit(self):
        assert max(k.radius for k in generate_training_kernels()) <= 3


class TestAllocation:
    def test_3d_gets_double_weight(self, machine):
        builder = TrainingSetBuilder(machine)
        instances = training_instances()
        counts = builder.point_allocation(instances, 6000)
        c3 = [c for q, c in zip(instances, counts) if q.dims == 3]
        c2 = [c for q, c in zip(instances, counts) if q.dims == 2]
        assert np.mean(c3) == pytest.approx(2.0 * np.mean(c2), rel=0.1)

    def test_minimum_two_per_instance(self, machine):
        builder = TrainingSetBuilder(machine)
        counts = builder.point_allocation(training_instances(), 520)
        assert min(counts) >= 2

    def test_too_small_budget_rejected(self, machine):
        builder = TrainingSetBuilder(machine)
        with pytest.raises(ValueError, match="at least"):
            builder.point_allocation(training_instances(), 100)

    @pytest.mark.parametrize("total", [420, 421, 520, 960, 2600, 2601, 6000, 16001])
    def test_sum_exactly_total(self, machine, total):
        """Largest-remainder correction: no rounding drift in the total."""
        builder = TrainingSetBuilder(machine)
        instances = training_instances()
        counts = builder.point_allocation(instances, total)
        assert sum(counts) == total
        assert min(counts) >= 2

    def test_floor_dominates_when_budget_is_tight(self, machine):
        """At exactly 2 points per instance everyone sits on the floor."""
        builder = TrainingSetBuilder(machine)
        instances = training_instances()
        counts = builder.point_allocation(instances, 2 * len(instances))
        assert counts == [2] * len(instances)

    def test_allocation_deterministic(self, machine):
        builder = TrainingSetBuilder(machine)
        instances = training_instances()
        assert builder.point_allocation(instances, 2600) == builder.point_allocation(
            instances, 2600
        )


class TestBuild:
    def test_build_shape(self, tiny_training_set):
        ts = tiny_training_set
        assert ts.num_instances == 210
        assert len(ts) >= 420
        assert ts.data.X.shape[1] > 0

    def test_features_in_unit_interval(self, tiny_training_set):
        X = tiny_training_set.data.X
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_times_positive(self, tiny_training_set):
        assert (tiny_training_set.data.times > 0).all()

    def test_labels_cover_groups(self, tiny_training_set):
        gids = set(np.unique(tiny_training_set.data.groups).tolist())
        assert set(tiny_training_set.group_labels) == gids

    def test_accounting_recorded(self, tiny_training_set):
        assert tiny_training_set.generation_wall_s > 0
        # Table II ballpark: the corpus compile is tens of hours
        assert 16 * 3600 < tiny_training_set.compile_wall_s < 64 * 3600

    def test_deterministic(self):
        a = TrainingSetBuilder(SimulatedMachine(seed=3), seed=3).build(520)
        b = TrainingSetBuilder(SimulatedMachine(seed=3), seed=3).build(520)
        assert np.array_equal(a.data.times, b.data.times)
        assert np.array_equal(a.data.X, b.data.X)

    def test_fingerprint_stable(self, machine):
        builder = TrainingSetBuilder(machine)
        assert builder.fingerprint() == builder.fingerprint()
