"""Tests for the ECM-style cost composition — the tuning landscape itself."""

import pytest

from repro.machine.cost import CostModel
from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.stencil.suite import benchmark_by_id, get_benchmark
from repro.tuning.vector import TuningVector


@pytest.fixture(scope="module")
def model():
    return CostModel()


def _cost(model, label, tuning):
    inst = benchmark_by_id(label)
    return model.sweep_cost(StencilExecution(inst, tuning))


class TestBottlenecks:
    def test_large_laplacian_is_memory_bound(self, model):
        cost = _cost(model, "laplacian-256x256x256", TuningVector(256, 16, 16, 2, 1))
        assert cost.memory_bound
        assert cost.bottleneck == "dram"

    def test_tricubic_is_compute_bound(self, model):
        cost = _cost(model, "tricubic-256x256x256", TuningVector(256, 8, 8, 2, 1))
        assert cost.bottleneck == "core"

    def test_small_2d_not_dram_bound(self, model):
        cost = _cost(model, "edge-512x512", TuningVector(128, 32, 1, 2, 1))
        assert cost.bottleneck != "dram"


class TestLandscapeShape:
    def test_blocking_matters_for_memory_bound(self, model):
        good = _cost(model, "laplacian-256x256x256", TuningVector(256, 16, 16, 2, 1))
        bad = _cost(model, "laplacian-256x256x256", TuningVector(1024, 1024, 1024, 2, 1))
        assert bad.total_s > 1.2 * good.total_s

    def test_tiny_blocks_hurt(self, model):
        good = _cost(model, "laplacian-256x256x256", TuningVector(256, 16, 16, 2, 1))
        tiny = _cost(model, "laplacian-256x256x256", TuningVector(2, 2, 2, 2, 1))
        assert tiny.total_s > 2.0 * good.total_s

    def test_unroll_matters_for_compute_bound(self, model):
        u0 = _cost(model, "tricubic-256x256x256", TuningVector(256, 8, 8, 0, 1))
        u2 = _cost(model, "tricubic-256x256x256", TuningVector(256, 8, 8, 2, 1))
        assert u2.total_s < u0.total_s

    def test_unroll_insensitive_for_memory_bound(self, model):
        u0 = _cost(model, "laplacian-256x256x256", TuningVector(256, 16, 16, 0, 1))
        u4 = _cost(model, "laplacian-256x256x256", TuningVector(256, 16, 16, 4, 1))
        assert abs(u0.total_s - u4.total_s) / u0.total_s < 0.05

    def test_chunking_tradeoff(self, model):
        """Huge chunks must underutilize; chunk=1 must beat chunk=max."""
        small = _cost(model, "laplacian-128x128x128", TuningVector(32, 16, 16, 2, 1))
        huge = _cost(model, "laplacian-128x128x128", TuningVector(32, 16, 16, 2, 1024))
        assert huge.total_s > small.total_s

    def test_gflops_ordering_matches_paper(self, model):
        """Fig. 5 magnitudes: tricubic ≫ blur > divergence ≈ gradient."""
        tricubic = model.gflops(
            StencilExecution(
                benchmark_by_id("tricubic-256x256x256"), TuningVector(256, 8, 8, 2, 1)
            )
        )
        gradient = model.gflops(
            StencilExecution(
                benchmark_by_id("gradient-256x256x256"), TuningVector(256, 16, 16, 2, 1)
            )
        )
        assert tricubic > 3.0 * gradient


class TestSanity:
    def test_time_positive_everywhere(self, model):
        inst = benchmark_by_id("wave-128x128x128")
        from repro.tuning.space import patus_space

        for tv in patus_space(3).random_vectors(100, rng=0):
            assert model.sweep_time(StencilExecution(inst, tv)) > 0

    def test_bigger_grid_takes_longer(self, model):
        t = TuningVector(128, 16, 16, 2, 1)
        small = model.sweep_time(
            StencilExecution(benchmark_by_id("laplacian-128x128x128"), t)
        )
        large = model.sweep_time(
            StencilExecution(benchmark_by_id("laplacian-256x256x256"), t)
        )
        assert large > 4.0 * small  # 8x points, bandwidth-bound

    def test_deterministic(self, model):
        e = StencilExecution(
            benchmark_by_id("blur-1024x768"), TuningVector(128, 32, 1, 4, 2)
        )
        assert model.sweep_time(e) == model.sweep_time(e)

    def test_gflops_below_peak(self, model):
        from repro.machine.spec import XEON_E5_2680_V3

        for label, tv in [
            ("tricubic-256x256x256", TuningVector(512, 8, 8, 2, 1)),
            ("blur-1024x1024", TuningVector(256, 32, 1, 4, 1)),
        ]:
            inst = benchmark_by_id(label)
            g = model.gflops(StencilExecution(inst, tv))
            assert g < XEON_E5_2680_V3.peak_gflops(inst.kernel.dtype)
