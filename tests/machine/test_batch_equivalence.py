"""Batch-vs-scalar equivalence: the vectorized pipeline against its oracle.

The scalar ``sweep_cost`` / ``true_time`` / ``measure`` path is the tested
oracle; the batch path must reproduce it to ≤1e-12 relative error across
randomly sampled kernels (2-D/3-D, 1–2 buffers, both dtypes), sizes and
tuning vectors, including clipped-block and single-tile edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.cost import CostModel
from repro.machine.executor import SimulatedMachine
from repro.machine.noise import NoiseModel
from repro.stencil.execution import StencilExecution, execution_hashes
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import TRAINING_SHAPES
from repro.tuning.space import patus_space
from repro.tuning.vector import TuningVector
from repro.util.rng import spawn

RTOL = 1e-12

SIZES_3D = [(24, 24, 24), (64, 64, 64), (96, 48, 32)]
SIZES_2D = [(64, 64, 1), (512, 256, 1)]


def random_kernels(n: int, seed: int = 0) -> list[StencilKernel]:
    """Sample kernels across shape, dims, radius, dtype and buffer count."""
    rng = spawn(seed, "equivalence-kernels")
    shapes = list(TRAINING_SHAPES.items())
    kernels = []
    for i in range(n):
        name, fn = shapes[int(rng.integers(len(shapes)))]
        dims = int(rng.choice([2, 3]))
        radius = int(rng.integers(1, 4))
        dtype = str(rng.choice(["float", "double"]))
        buffers = int(rng.integers(1, 3))
        pattern = fn(dims, radius)
        kernels.append(
            StencilKernel(
                f"eq-{name}-{dims}d-r{radius}-{dtype}-{buffers}buf-{i}",
                tuple([pattern] * buffers),
                dtype=dtype,
                space_dims=dims,
            )
        )
    return kernels


def random_instances(n: int, seed: int = 0) -> list[StencilInstance]:
    rng = spawn(seed, "equivalence-instances")
    out = []
    for kernel in random_kernels(n, seed):
        sizes = SIZES_3D if kernel.dims == 3 else SIZES_2D
        out.append(StencilInstance(kernel, sizes[int(rng.integers(len(sizes)))]))
    return out


def sample_tunings(instance: StencilInstance, count: int, seed: int) -> list[TuningVector]:
    space = patus_space(instance.dims)
    tunings = space.random_vectors(count, rng=spawn(seed, instance.label()))
    # edge cases: blocks clipped by the grid, and a single (whole-grid) tile
    sx, sy, sz = instance.size
    big = 1024
    tunings.append(TuningVector(big, big, big if instance.dims == 3 else 1, 4, 2))
    tunings.append(TuningVector(big, 2, 1 if instance.dims == 2 else 2, 0, 1))
    return tunings


class TestSweepCostEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_components_match_scalar(self, seed):
        model = CostModel()
        for instance in random_instances(6, seed=seed):
            tunings = sample_tunings(instance, 24, seed)
            batch = model.sweep_costs_batch(instance, tunings)
            scalar = [
                model.sweep_cost(StencilExecution(instance, t)) for t in tunings
            ]
            for field in ("t_core", "t_l2", "t_l3", "t_dram", "total_s"):
                np.testing.assert_allclose(
                    getattr(batch, field),
                    np.array([getattr(c, field) for c in scalar]),
                    rtol=RTOL,
                    err_msg=f"{field} mismatch for {instance.label()}",
                )
            np.testing.assert_allclose(
                batch.imbalance,
                np.array([c.schedule.imbalance for c in scalar]),
                rtol=RTOL,
            )
            np.testing.assert_allclose(
                batch.overhead_s,
                np.array([c.schedule.overhead_s for c in scalar]),
                rtol=RTOL,
            )
            assert batch.bottlenecks == [c.bottleneck for c in scalar]
            assert list(batch.memory_bound) == [c.memory_bound for c in scalar]

    def test_single_tile_and_clipped_blocks(self):
        model = CostModel()
        for instance in random_instances(4, seed=99):
            sx, sy, sz = instance.size
            whole_grid = TuningVector(1024, 1024, 1024 if instance.dims == 3 else 1, 2, 1)
            batch = model.sweep_costs_batch(instance, [whole_grid])
            scalar = model.sweep_cost(StencilExecution(instance, whole_grid))
            assert batch.total_s[0] == pytest.approx(scalar.total_s, rel=RTOL)
            assert batch.threads_used[0] == scalar.schedule.threads_used

    def test_empty_batch(self):
        model = CostModel()
        instance = random_instances(1, seed=5)[0]
        batch = model.sweep_costs_batch(instance, [])
        assert len(batch) == 0
        assert batch.total_s.shape == (0,)

    def test_2d_bz_validated_like_scalar(self):
        model = CostModel()
        instance = next(q for q in random_instances(8, seed=1) if q.dims == 2)
        with pytest.raises(ValueError, match="bz"):
            model.sweep_costs_batch(instance, [TuningVector(8, 8, 4, 2, 1)])


class TestMachineEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_true_times_batch(self, seed):
        for instance in random_instances(4, seed=seed + 10):
            tunings = sample_tunings(instance, 16, seed)
            batch = SimulatedMachine(seed=seed).true_times_batch(instance, tunings)
            fresh = SimulatedMachine(seed=seed)
            scalar = np.array(
                [fresh.true_time(StencilExecution(instance, t)) for t in tunings]
            )
            np.testing.assert_allclose(batch, scalar, rtol=RTOL)

    @pytest.mark.parametrize("seed", range(3))
    def test_measure_batch_times(self, seed):
        instance = random_instances(1, seed=seed + 20)[0]
        tunings = sample_tunings(instance, 10, seed)
        bm = SimulatedMachine(seed=seed).measure_batch(instance, tunings, repeats=3)
        fresh = SimulatedMachine(seed=seed)
        for i, t in enumerate(tunings):
            m = fresh.measure(StencilExecution(instance, t), repeats=3)
            np.testing.assert_allclose(bm.times[i], np.array(m.times), rtol=RTOL)


class TestHashAndNoiseEquivalence:
    def test_execution_hashes_match_stable_hash(self):
        for instance in random_instances(5, seed=30):
            tunings = sample_tunings(instance, 12, 0)
            assert execution_hashes(instance, tunings) == [
                StencilExecution(instance, t).stable_hash() for t in tunings
            ]

    def test_noise_factors_match_scalar(self):
        noise = NoiseModel(seed=17)
        hashes = [h * 2654435761 % (1 << 64) for h in range(1, 40)]
        factors = noise.factors(hashes, repeats=4)
        for i, h in enumerate(hashes):
            for r in range(4):
                assert factors[i, r] == noise.factor(h, r)

    def test_noise_free_fast_path(self):
        exact = NoiseModel(seed=17).exact()
        factors = exact.factors(list(range(100)), repeats=3)
        assert (factors == 1.0).all()
