"""Tests for the layer-condition traffic model."""

import pytest

from repro.machine.cache import TrafficModel
from repro.machine.spec import XEON_E5_2680_V3
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import StencilPattern
from repro.stencil.shapes import hypercube, laplacian


@pytest.fixture()
def model():
    return TrafficModel(XEON_E5_2680_V3)


class TestPatternPlanes:
    def test_laplacian_r1(self, model):
        p_z, p_y = model.pattern_planes(laplacian(3, 1))
        assert p_z == 3  # z ∈ {-1, 0, 1}
        assert p_y == 3  # central plane has y ∈ {-1, 0, 1}

    def test_laplacian_r2(self, model):
        p_z, p_y = model.pattern_planes(laplacian(3, 2))
        assert (p_z, p_y) == (5, 5)

    def test_2d_pattern_single_plane(self, model):
        p_z, p_y = model.pattern_planes(hypercube(2, 1))
        assert p_z == 1 and p_y == 3


class TestBufferFactor:
    def test_regimes_ordered(self, model):
        """Traffic factor: fits-everything <= rows-fit <= nothing-fits."""
        p = laplacian(3, 1)
        huge, mid, tiny = 1e9, 6_000.0, 200.0
        block = (64, 16, 16)
        f_huge = model.buffer_factor(p, block, 8, huge)
        f_mid = model.buffer_factor(p, block, 8, mid)
        f_tiny = model.buffer_factor(p, block, 8, tiny)
        assert f_huge <= f_mid <= f_tiny
        assert f_huge == pytest.approx(1.0, abs=0.05)
        assert f_tiny == pytest.approx(9.0, rel=0.25)  # P_z * P_y = 9

    def test_smaller_blocks_fit_better(self, model):
        p = laplacian(3, 2)
        cap = 50_000.0
        f_small = model.buffer_factor(p, (64, 8, 8), 8, cap)
        f_large = model.buffer_factor(p, (512, 256, 8), 8, cap)
        assert f_small < f_large

    def test_2d_factor_bounded_by_rows(self, model):
        p = hypercube(2, 2)
        f = model.buffer_factor(p, (1024, 1024, 1), 4, 1000.0)
        assert f <= 5.0 + 0.1  # P_y = 5 rows at most


class TestHaloOverfetch:
    def test_large_blocks_near_one(self, model):
        p = laplacian(3, 1)
        f = model.halo_overfetch(p, (1024, 256, 256), 8, 64)
        assert f == pytest.approx(1.0, rel=0.05)

    def test_tiny_x_block_pays_line_granularity(self, model):
        p = laplacian(3, 1)
        f_tiny = model.halo_overfetch(p, (2, 128, 128), 8, 64)
        f_big = model.halo_overfetch(p, (128, 128, 128), 8, 64)
        assert f_tiny > 2.0 * f_big

    def test_tiny_y_block_pays_halo(self, model):
        p = laplacian(3, 2)
        f_tiny = model.halo_overfetch(p, (128, 2, 128), 8, 64)
        f_big = model.halo_overfetch(p, (128, 128, 128), 8, 64)
        assert f_tiny > f_big


class TestAnalyze:
    def test_levels_reported(self, model):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        rep = model.analyze(k, (64, 16, 16), threads=12)
        assert set(rep.level_bytes) == {"L1", "L2", "L3"}
        assert rep.dram_bytes == rep.level_bytes["L3"]

    def test_output_streams_included(self, model):
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        rep = model.analyze(k, (64, 16, 16), threads=1)
        # at least write-allocate + write-back of the output
        assert rep.dram_bytes >= 2 * 8

    def test_multibuffer_more_traffic(self, model):
        one = StencilKernel.single_buffer("k1", laplacian(3, 1), "double")
        three = StencilKernel.replicated("k3", laplacian(3, 1), 3, "double")
        b1 = model.analyze(one, (64, 16, 16), 12).dram_bytes
        b3 = model.analyze(three, (64, 16, 16), 12).dram_bytes
        # the constant output streams (write-allocate + write-back) dilute
        # the ratio, but the three input streams must dominate clearly
        assert b3 > 1.5 * b1
        out_bytes = TrafficModel.OUTPUT_STREAMS * 8
        assert (b3 - out_bytes) > 2.5 * (b1 - out_bytes)

    def test_fitting_grid_suppresses_dram(self, model):
        k = StencilKernel.single_buffer("edge", hypercube(2, 1), "float")
        small = model.analyze(k, (64, 64, 1), 12, grid_points=512 * 512)
        large = model.analyze(k, (64, 64, 1), 12, grid_points=4096 * 4096)
        assert small.dram_bytes < 0.5 * large.dram_bytes

    def test_blocking_sweet_spot_exists_for_memory_bound(self, model):
        """There must be a y/z block strictly better than both extremes."""
        k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
        grid = 256**3

        def dram(by, bz):
            return model.analyze(k, (256, by, bz), 12, grid_points=grid).dram_bytes

        tiny = dram(2, 2)
        mid = dram(16, 16)
        huge = dram(256, 256)
        assert mid < tiny and mid < huge
