"""Tests for the roofline diagnostics."""

import pytest

from repro.machine.roofline import ridge_intensity, roofline
from repro.machine.spec import XEON_E5_2680_V3
from repro.stencil.suite import get_benchmark


class TestRoofline:
    def test_laplacian_memory_bound(self):
        point = roofline(get_benchmark("laplacian").kernel)
        assert point.memory_bound
        # 14 flops / 24 compulsory bytes
        assert point.arithmetic_intensity == pytest.approx(14.0 / 24.0)

    def test_tricubic_compute_bound(self):
        point = roofline(get_benchmark("tricubic").kernel)
        assert not point.memory_bound

    def test_attainable_below_both_roofs(self):
        for name in ("laplacian", "tricubic", "blur", "divergence"):
            k = get_benchmark(name).kernel
            p = roofline(k)
            compute_roof = (
                XEON_E5_2680_V3.peak_gflops(k.dtype)
                * XEON_E5_2680_V3.codegen_efficiency
            )
            assert p.attainable_gflops <= compute_roof + 1e-9
            assert p.attainable_gflops <= (
                p.arithmetic_intensity * XEON_E5_2680_V3.mem_bandwidth_gbs + 1e-9
            )

    def test_ridge_consistency(self):
        p = roofline(get_benchmark("laplacian").kernel)
        assert p.ridge == pytest.approx(ridge_intensity(XEON_E5_2680_V3, "double"))

    def test_cost_model_agrees_with_roofline_classification(self):
        """Kernels far from the ridge must be classified identically by the
        detailed cost model (at a sensible tuning) and the roofline."""
        from repro.machine.cost import CostModel
        from repro.stencil.execution import StencilExecution
        from repro.stencil.suite import benchmark_by_id
        from repro.tuning.vector import TuningVector

        model = CostModel()
        cases = {
            "laplacian-256x256x256": True,  # memory bound
            "tricubic-256x256x256": False,  # compute bound
        }
        for label, expect_memory in cases.items():
            inst = benchmark_by_id(label)
            cost = model.sweep_cost(
                StencilExecution(inst, TuningVector(256, 16, 8, 2, 1))
            )
            assert cost.memory_bound == expect_memory
            assert roofline(inst.kernel).memory_bound == expect_memory

    def test_float_ridge_above_double(self):
        # float peak is 2x double at equal bandwidth → larger ridge intensity
        assert ridge_intensity(XEON_E5_2680_V3, "float") > ridge_intensity(
            XEON_E5_2680_V3, "double"
        )
