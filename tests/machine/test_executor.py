"""Tests for the SimulatedMachine measurement front-end."""

import numpy as np
import pytest

from repro.machine.executor import SimulatedMachine
from repro.stencil.execution import StencilExecution
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space
from repro.tuning.vector import TuningVector


@pytest.fixture()
def inst():
    return benchmark_by_id("laplacian-128x128x128")


@pytest.fixture()
def execution(inst):
    return StencilExecution(inst, TuningVector(64, 16, 16, 2, 1))


class TestMeasurement:
    def test_median_and_best(self, machine, execution):
        m = machine.measure(execution, repeats=5)
        assert m.time == np.median(m.times)
        assert m.best == min(m.times)
        assert len(m.times) == 5

    def test_gflops_consistent(self, machine, execution):
        m = machine.measure(execution)
        assert m.gflops == pytest.approx(
            execution.instance.flops / m.time / 1e9
        )

    def test_noise_around_truth(self, machine, execution):
        truth = machine.true_time(execution)
        m = machine.measure(execution, repeats=3)
        assert abs(m.time - truth) / truth < 0.25

    def test_reproducible_across_machines(self, execution):
        a = SimulatedMachine(seed=9).measure(execution).time
        b = SimulatedMachine(seed=9).measure(execution).time
        assert a == b

    def test_seed_changes_noise_not_truth(self, execution):
        a = SimulatedMachine(seed=1)
        b = SimulatedMachine(seed=2)
        assert a.true_time(execution) == b.true_time(execution)
        assert a.measure(execution).time != b.measure(execution).time

    def test_repeats_validated(self, machine, execution):
        with pytest.raises(ValueError):
            machine.measure(execution, repeats=0)

    def test_measure_tuning_convenience(self, machine, inst):
        m = machine.measure_tuning(inst, TuningVector(64, 16, 16, 2, 1))
        assert m.execution.instance == inst


class TestAccounting:
    def test_evaluation_counter(self, machine, execution):
        machine.measure(execution)
        machine.measure(execution)
        assert machine.evaluations == 2

    def test_wall_clock_accrues(self, machine, execution):
        machine.measure(execution)
        assert machine.simulated_wall_s > machine.SETUP_SECONDS

    def test_wall_clock_model(self, machine, execution):
        per_run = machine.true_time(execution) * machine.SWEEPS_PER_RUN
        expected = machine.SETUP_SECONDS + 3 * per_run
        assert machine.wall_clock_cost(execution, 3) == pytest.approx(expected)

    def test_reset(self, machine, execution):
        machine.measure(execution)
        machine.reset_counters()
        assert machine.evaluations == 0
        assert machine.simulated_wall_s == 0.0

    def test_fork_isolated_counters_shared_truth(self, machine, execution):
        machine.measure(execution)
        fork = machine.fork()
        assert fork.evaluations == 0
        assert fork.true_time(execution) == machine.true_time(execution)


class TestHelpers:
    def test_true_times_vector(self, machine, inst):
        tunings = patus_space(3).random_vectors(10, rng=0)
        times = machine.true_times(inst, tunings)
        assert times.shape == (10,)
        assert (times > 0).all()

    def test_best_tuning_is_argmin(self, machine, inst):
        tunings = patus_space(3).random_vectors(25, rng=1)
        best, best_t = machine.best_tuning(inst, tunings)
        times = machine.true_times(inst, tunings)
        assert best_t == times.min()
        assert machine.true_time(StencilExecution(inst, best)) == best_t

    def test_cost_cache_hit(self, machine, execution):
        machine.true_time(execution)
        assert execution in machine._cost_cache
