"""Tests for the SimulatedMachine measurement front-end."""

import numpy as np
import pytest

from repro.machine.executor import SimulatedMachine
from repro.stencil.execution import StencilExecution
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space
from repro.tuning.vector import TuningVector


@pytest.fixture()
def inst():
    return benchmark_by_id("laplacian-128x128x128")


@pytest.fixture()
def execution(inst):
    return StencilExecution(inst, TuningVector(64, 16, 16, 2, 1))


class TestMeasurement:
    def test_median_and_best(self, machine, execution):
        m = machine.measure(execution, repeats=5)
        assert m.time == np.median(m.times)
        assert m.best == min(m.times)
        assert len(m.times) == 5

    def test_gflops_consistent(self, machine, execution):
        m = machine.measure(execution)
        assert m.gflops == pytest.approx(
            execution.instance.flops / m.time / 1e9
        )

    def test_noise_around_truth(self, machine, execution):
        truth = machine.true_time(execution)
        m = machine.measure(execution, repeats=3)
        assert abs(m.time - truth) / truth < 0.25

    def test_reproducible_across_machines(self, execution):
        a = SimulatedMachine(seed=9).measure(execution).time
        b = SimulatedMachine(seed=9).measure(execution).time
        assert a == b

    def test_seed_changes_noise_not_truth(self, execution):
        a = SimulatedMachine(seed=1)
        b = SimulatedMachine(seed=2)
        assert a.true_time(execution) == b.true_time(execution)
        assert a.measure(execution).time != b.measure(execution).time

    def test_repeats_validated(self, machine, execution):
        with pytest.raises(ValueError):
            machine.measure(execution, repeats=0)

    def test_measure_tuning_convenience(self, machine, inst):
        m = machine.measure_tuning(inst, TuningVector(64, 16, 16, 2, 1))
        assert m.execution.instance == inst


class TestAccounting:
    def test_evaluation_counter(self, machine, execution):
        machine.measure(execution)
        machine.measure(execution)
        assert machine.evaluations == 2

    def test_wall_clock_accrues(self, machine, execution):
        machine.measure(execution)
        assert machine.simulated_wall_s > machine.SETUP_SECONDS

    def test_wall_clock_model(self, machine, execution):
        per_run = machine.true_time(execution) * machine.SWEEPS_PER_RUN
        expected = machine.SETUP_SECONDS + 3 * per_run
        assert machine.wall_clock_cost(execution, 3) == pytest.approx(expected)

    def test_reset(self, machine, execution):
        machine.measure(execution)
        machine.reset_counters()
        assert machine.evaluations == 0
        assert machine.simulated_wall_s == 0.0

    def test_fork_isolated_counters_shared_truth(self, machine, execution):
        machine.measure(execution)
        fork = machine.fork()
        assert fork.evaluations == 0
        assert fork.true_time(execution) == machine.true_time(execution)


class TestHelpers:
    def test_true_times_vector(self, machine, inst):
        tunings = patus_space(3).random_vectors(10, rng=0)
        times = machine.true_times(inst, tunings)
        assert times.shape == (10,)
        assert (times > 0).all()

    def test_best_tuning_is_argmin(self, machine, inst):
        tunings = patus_space(3).random_vectors(25, rng=1)
        best, best_t = machine.best_tuning(inst, tunings)
        times = machine.true_times(inst, tunings)
        assert best_t == times.min()
        assert machine.true_time(StencilExecution(inst, best)) == best_t

    def test_cost_cache_hit(self, machine, execution):
        machine.true_time(execution)
        assert execution.stable_hash() in machine._cost_cache


class TestBatchMeasurement:
    def test_true_times_batch_matches_scalar(self, inst):
        tunings = patus_space(3).random_vectors(30, rng=2)
        batch = SimulatedMachine(seed=5).true_times_batch(inst, tunings)
        scalar = np.array(
            [
                SimulatedMachine(seed=5).true_time(StencilExecution(inst, t))
                for t in tunings
            ]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12)

    def test_measure_batch_matches_scalar(self, inst):
        tunings = patus_space(3).random_vectors(12, rng=3)
        bm = SimulatedMachine(seed=6).measure_batch(inst, tunings, repeats=3)
        assert bm.times.shape == (12, 3)
        other = SimulatedMachine(seed=6)
        for i, t in enumerate(tunings):
            m = other.measure(StencilExecution(inst, t), repeats=3)
            np.testing.assert_allclose(bm.times[i], np.array(m.times), rtol=1e-12)
            assert bm.medians[i] == pytest.approx(m.time, rel=1e-12)

    def test_measure_batch_charges_budget(self, machine, inst):
        tunings = patus_space(3).random_vectors(7, rng=4)
        machine.measure_batch(inst, tunings, repeats=2)
        assert machine.evaluations == 7
        assert machine.simulated_wall_s > 7 * machine.SETUP_SECONDS

    def test_measure_batch_wall_clock_matches_scalar(self, inst):
        tunings = patus_space(3).random_vectors(9, rng=5)
        a = SimulatedMachine(seed=7)
        a.measure_batch(inst, tunings, repeats=3)
        b = SimulatedMachine(seed=7)
        for t in tunings:
            b.measure(StencilExecution(inst, t), repeats=3)
        assert a.simulated_wall_s == pytest.approx(b.simulated_wall_s, rel=1e-12)
        assert a.evaluations == b.evaluations

    def test_measure_batch_repeats_validated(self, machine, inst):
        with pytest.raises(ValueError):
            machine.measure_batch(inst, patus_space(3).random_vectors(2, rng=0), 0)

    def test_batch_and_scalar_share_cache(self, machine, inst):
        tunings = patus_space(3).random_vectors(5, rng=6)
        batch = machine.true_times_batch(inst, tunings)
        for t, bt in zip(tunings, batch):
            assert machine.true_time(StencilExecution(inst, t)) == bt

    def test_batch_measurement_views(self, machine, inst):
        tunings = patus_space(3).random_vectors(4, rng=7)
        bm = machine.measure_batch(inst, tunings, repeats=2)
        views = list(bm.measurements())
        assert len(views) == 4
        for v, med in zip(views, bm.medians):
            assert v.time == pytest.approx(float(med))

    def test_wall_clock_costs_batch(self, machine, inst):
        tunings = patus_space(3).random_vectors(6, rng=8)
        walls = machine.wall_clock_costs(inst, tunings, repeats=3)
        for t, w in zip(tunings, walls):
            assert w == pytest.approx(
                machine.wall_clock_cost(StencilExecution(inst, t), 3), rel=1e-12
            )


class TestCacheBounds:
    def test_fifo_eviction(self, inst):
        machine = SimulatedMachine(seed=0, max_cache_entries=8)
        tunings = patus_space(3).random_vectors(20, rng=9)
        machine.true_times_batch(inst, tunings)
        assert len(machine._time_cache) <= 8
        # evicted entries recompute to the same value
        again = machine.true_times_batch(inst, tunings)
        fresh = SimulatedMachine(seed=0).true_times_batch(inst, tunings)
        np.testing.assert_array_equal(again, fresh)

    def test_scalar_path_bounded_too(self, inst):
        machine = SimulatedMachine(seed=0, max_cache_entries=4)
        for t in patus_space(3).random_vectors(10, rng=10):
            machine.true_time(StencilExecution(inst, t))
        assert len(machine._cost_cache) <= 4
        assert len(machine._time_cache) <= 4

    def test_unbounded_by_request(self, inst):
        machine = SimulatedMachine(seed=0, max_cache_entries=None)
        tunings = patus_space(3).random_vectors(30, rng=11)
        machine.true_times_batch(inst, tunings)
        assert len(machine._time_cache) == 30
