"""Tests for the SIMD/unroll model."""

import pytest

from repro.machine.simd import SimdModel
from repro.machine.spec import XEON_E5_2680_V3
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian


@pytest.fixture()
def model():
    return SimdModel(XEON_E5_2680_V3)


@pytest.fixture()
def lap():
    return StencilKernel.single_buffer("lap", laplacian(3, 1), "double")


class TestVectorEfficiency:
    def test_multiple_of_lanes_perfect(self, model):
        assert model.vector_efficiency(64, 8) == 1.0

    def test_remainder_penalized(self, model):
        assert model.vector_efficiency(9, 8) == pytest.approx(9 / 16)

    def test_tiny_block_wastes_lanes(self, model):
        assert model.vector_efficiency(2, 8) == pytest.approx(0.25)

    def test_zero_extent_guard(self, model):
        assert model.vector_efficiency(0, 8) > 0


class TestUnroll:
    def test_moderate_unroll_helps(self, model, lap):
        rolled = model.unroll_factor_cycles(lap, 1)
        unrolled = model.unroll_factor_cycles(lap, 4)
        assert unrolled < rolled

    def test_register_pressure_hurts_wide_patterns(self, model):
        wide = StencilKernel.single_buffer("cube", hypercube(3, 3), "double")
        assert model.unroll_factor_cycles(wide, 8) > model.unroll_factor_cycles(wide, 2)

    def test_unroll_zero_equals_one(self, model, lap):
        assert model.unroll_factor_cycles(lap, 0) == model.unroll_factor_cycles(lap, 1)

    def test_loop_overhead_shrinks_with_unroll(self, model):
        assert model.loop_overhead_cycles(8, 8) < model.loop_overhead_cycles(1, 8)


class TestCyclesPerPoint:
    def test_positive(self, model, lap):
        assert model.cycles_per_point(lap, 64, 2) > 0

    def test_more_reads_more_cycles(self, model, lap):
        heavy = StencilKernel.single_buffer("cube", hypercube(3, 2), "double")
        assert model.body_cycles_per_point(heavy) > model.body_cycles_per_point(lap)

    def test_float_cheaper_than_double(self, model):
        f = StencilKernel.single_buffer("f", laplacian(3, 1), "float")
        d = StencilKernel.single_buffer("d", laplacian(3, 1), "double")
        assert model.body_cycles_per_point(f) < model.body_cycles_per_point(d)

    def test_small_inner_extent_costs_more(self, model, lap):
        assert model.cycles_per_point(lap, 2, 0) > model.cycles_per_point(lap, 64, 0)

    def test_codegen_efficiency_scales(self, lap):
        import dataclasses

        fast_spec = dataclasses.replace(XEON_E5_2680_V3, codegen_efficiency=0.5)
        slow_spec = dataclasses.replace(XEON_E5_2680_V3, codegen_efficiency=0.1)
        fast = SimdModel(fast_spec).body_cycles_per_point(lap)
        slow = SimdModel(slow_spec).body_cycles_per_point(lap)
        assert slow == pytest.approx(5.0 * fast)
