"""Tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.machine.noise import NoiseModel


class TestDeterminism:
    def test_same_inputs_same_factor(self):
        n = NoiseModel(seed=1)
        assert n.factor(1234, 0) == n.factor(1234, 0)

    def test_repeat_changes_factor(self):
        n = NoiseModel(seed=1)
        assert n.factor(1234, 0) != n.factor(1234, 1)

    def test_execution_hash_changes_factor(self):
        n = NoiseModel(seed=1)
        assert n.factor(1234, 0) != n.factor(5678, 0)

    def test_seed_changes_factor(self):
        assert NoiseModel(seed=1).factor(9, 0) != NoiseModel(seed=2).factor(9, 0)


class TestDistribution:
    def test_mean_near_one(self):
        n = NoiseModel(sigma=0.02, spike_probability=0.0, seed=3)
        factors = np.array([n.factor(h, 0) for h in range(4000)])
        assert factors.mean() == pytest.approx(1.0, abs=0.01)

    def test_sigma_controls_spread(self):
        tight = NoiseModel(sigma=0.01, spike_probability=0.0, seed=4)
        wide = NoiseModel(sigma=0.10, spike_probability=0.0, seed=4)
        t = np.std([tight.factor(h, 0) for h in range(2000)])
        w = np.std([wide.factor(h, 0) for h in range(2000)])
        assert w > 5.0 * t

    def test_factors_positive(self):
        n = NoiseModel(sigma=0.1, seed=5)
        assert all(n.factor(h, 0) > 0 for h in range(1000))

    def test_spikes_occur_at_expected_rate(self):
        n = NoiseModel(sigma=0.0, spike_probability=0.05, spike_factor=2.0, seed=6)
        factors = np.array([n.factor(h, 0) for h in range(4000)])
        spike_rate = (factors > 1.5).mean()
        assert 0.03 < spike_rate < 0.07

    def test_exact_disables_everything(self):
        n = NoiseModel(sigma=0.05, spike_probability=0.5, seed=7).exact()
        assert all(n.factor(h, r) == 1.0 for h in range(50) for r in range(3))
