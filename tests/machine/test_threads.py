"""Tests for the OpenMP scheduling model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.spec import XEON_E5_2680_V3
from repro.machine.threads import ScheduleModel


@pytest.fixture()
def model():
    return ScheduleModel(XEON_E5_2680_V3)


class TestSchedule:
    def test_perfect_balance(self, model):
        r = model.schedule(num_tiles=1200, chunk=1)
        assert r.imbalance == pytest.approx(1.0)
        assert r.threads_used == 12

    def test_fewer_tiles_than_cores(self, model):
        r = model.schedule(num_tiles=3, chunk=1)
        assert r.threads_used == 3
        assert r.imbalance == pytest.approx(1.0)

    def test_single_tile(self, model):
        r = model.schedule(num_tiles=1, chunk=1)
        assert r.threads_used == 1
        assert r.num_chunks == 1

    def test_ceil_imbalance(self, model):
        # 13 tiles over 12 threads: busiest owns 2, mean = 13/12
        r = model.schedule(num_tiles=13, chunk=1)
        assert r.imbalance == pytest.approx(2 / (13 / 12))

    def test_large_chunks_can_underutilize(self, model):
        balanced = model.schedule(num_tiles=1200, chunk=1)
        chunky = model.schedule(num_tiles=1200, chunk=512)
        assert chunky.threads_used < 12 or chunky.imbalance > balanced.imbalance

    def test_overhead_decreases_with_chunk(self, model):
        fine = model.schedule(num_tiles=10_000, chunk=1)
        coarse = model.schedule(num_tiles=10_000, chunk=8)
        assert coarse.overhead_s < fine.overhead_s

    def test_parallel_efficiency_inverse(self, model):
        r = model.schedule(num_tiles=13, chunk=1)
        assert r.parallel_efficiency == pytest.approx(1.0 / r.imbalance)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.schedule(0, 1)
        with pytest.raises(ValueError):
            model.schedule(10, 0)

    @given(st.integers(1, 50_000), st.integers(1, 64))
    def test_invariants(self, tiles, chunk):
        model = ScheduleModel(XEON_E5_2680_V3)
        r = model.schedule(tiles, chunk)
        assert 1 <= r.threads_used <= 12
        assert r.imbalance >= 1.0 - 1e-12
        assert r.overhead_s > 0
        assert r.num_chunks == -(-tiles // chunk)
        # busiest thread cannot exceed all tiles
        assert r.imbalance <= r.threads_used + 1e-12
