"""Wall-clock-window budget refills: ``BudgetedMachine.refill_every``.

The continual-learning ROADMAP follow-up: probing budgets should renew on
a schedule ("N evaluations per minute") instead of someone calling
``refill()`` by hand.  These tests pin the scheduling semantics with an
injected clock — especially the two edge cases that bit the manual
design: a batch inflight while the window boundary passes, and exhaustion
landing exactly at a boundary.
"""

from __future__ import annotations

import pytest

from repro.machine.budget import BudgetedMachine, MeasurementBudgetExceeded
from repro.machine.executor import SimulatedMachine
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import laplacian
from repro.tuning.space import patus_space
from repro.util.rng import spawn


class FakeClock:
    """A deterministic, manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def instance() -> StencilInstance:
    kernel = StencilKernel.single_buffer("laplacian", laplacian(3, 1), "double")
    return StencilInstance(kernel, (32, 32, 32))


@pytest.fixture()
def tunings(instance):
    return patus_space(3).random_vectors(4, rng=spawn(5, "budget-refill"))


def make_budgeted(max_evaluations=8) -> "tuple[BudgetedMachine, FakeClock]":
    clock = FakeClock()
    machine = BudgetedMachine(
        SimulatedMachine(seed=3), max_evaluations=max_evaluations
    )
    machine.refill_every(60.0, clock=clock)
    return machine, clock


class TestScheduling:
    def test_spent_resets_after_the_window(self, instance, tunings):
        machine, clock = make_budgeted()
        machine.measure_batch(instance, tunings)
        assert machine.spent_evaluations == 4
        clock.advance(60.0)
        assert machine.remaining_evaluations == 8
        assert machine.spent_evaluations == 0
        assert machine.auto_refills == 1

    def test_no_refill_before_the_boundary(self, instance, tunings):
        machine, clock = make_budgeted()
        machine.measure_batch(instance, tunings)
        clock.advance(59.999)
        assert machine.remaining_evaluations == 4
        assert machine.auto_refills == 0

    def test_idle_windows_collapse_to_one_reset(self, instance, tunings):
        """Three windows of idleness grant one fresh budget, not three."""
        machine, clock = make_budgeted()
        machine.measure_batch(instance, tunings)
        clock.advance(3 * 60.0 + 5.0)
        assert machine.remaining_evaluations == 8
        assert machine.auto_refills == 1  # one rollover event, grid intact
        machine.measure_batch(instance, tunings)
        machine.measure_batch(instance, tunings)
        with pytest.raises(MeasurementBudgetExceeded):
            machine.measure_batch(instance, tunings)

    def test_boundary_grid_stays_aligned_to_arming(self, instance, tunings):
        """A rollover observed mid-window keeps later boundaries on the
        original grid: next reset at 2T, not (1.7T + T)."""
        machine, clock = make_budgeted()
        clock.advance(60.0 + 42.0)  # observe rollover at 1.7 windows
        assert machine.remaining_evaluations == 8
        machine.measure_batch(instance, tunings)
        clock.advance(18.0)  # exactly 2T since arming
        assert machine.remaining_evaluations == 8
        assert machine.auto_refills == 2

    def test_rearming_and_disarming(self, instance, tunings):
        machine, clock = make_budgeted()
        machine.measure_batch(instance, tunings)
        machine.refill_every(None)  # disarm: back to manual windows
        clock.advance(600.0)
        assert machine.remaining_evaluations == 4, "disarmed budget must not renew"
        machine.refill_every(30.0, clock=clock)  # re-arm starts fresh
        assert machine.remaining_evaluations == 8

    def test_invalid_window_rejected(self):
        machine, _ = make_budgeted()
        with pytest.raises(ValueError, match="positive"):
            machine.refill_every(0.0)

    def test_manual_refill_restarts_the_window(self, instance, tunings):
        """refill() means "the new window starts now": the next automatic
        boundary is one full window after the manual refill."""
        machine, clock = make_budgeted()
        machine.measure_batch(instance, tunings)
        clock.advance(50.0)
        machine.refill()
        machine.measure_batch(instance, tunings)
        clock.advance(30.0)  # 80s after arming, but only 30s into new window
        assert machine.remaining_evaluations == 4
        clock.advance(30.0)
        assert machine.remaining_evaluations == 8


class TestEdgeCases:
    def test_refill_during_inflight_batch_charges_the_starting_window(
        self, instance, tunings
    ):
        """A batch admitted just before the boundary is charged to the
        window it started in, even if the wall clock crosses the boundary
        while the measurement runs; the *next* check sees a clean window
        that was not pre-charged by the inflight batch."""
        machine, clock = make_budgeted()

        original = machine.machine.measure_batch

        def slow_measure(*args, **kwargs):
            clock.advance(5.0)  # the boundary passes mid-measurement
            return original(*args, **kwargs)

        machine.machine.measure_batch = slow_measure
        clock.advance(58.0)  # 2s of window 1 left when the batch starts
        machine.measure_batch(instance, tunings)
        # charged in full, against the window observed at admission
        assert machine.spent_evaluations == 4
        assert machine.auto_refills == 0
        # the next affordability check rolls the window and sees a fresh
        # budget — the inflight charge does not leak into window 2
        assert machine.remaining_evaluations == 8
        assert machine.auto_refills == 1

    def test_exhaustion_exactly_at_the_boundary(self, instance, tunings):
        """Spending the budget to zero at the end of a window refuses
        further probes until the boundary, then admits them — and the
        refusal right at the edge does not consume the new window."""
        machine, clock = make_budgeted(max_evaluations=4)
        clock.advance(59.0)
        machine.measure_batch(instance, tunings)  # budget now exactly 0
        assert machine.remaining_evaluations == 0
        assert machine.try_measure_batch(instance, tunings) is None
        assert machine.refused == 1
        clock.advance(1.0)  # exactly on the boundary: elapsed == window
        result = machine.try_measure_batch(instance, tunings)
        assert result is not None, "the boundary itself must admit the probe"
        assert machine.spent_evaluations == 4
        assert machine.refused == 1

    def test_all_or_nothing_survives_the_schedule(self, instance, tunings):
        """A refused batch under an armed schedule charges nothing — the
        budget it was refused against renews untouched."""
        machine, clock = make_budgeted(max_evaluations=2)
        assert machine.try_measure_batch(instance, tunings) is None
        assert machine.spent_evaluations == 0
        clock.advance(60.0)
        assert machine.try_measure_batch(instance, tunings) is None, (
            "a batch larger than the full window budget can never run"
        )
        assert not machine.ever_affordable(instance, tunings)
