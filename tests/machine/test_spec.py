"""Tests for the machine specification."""

import pytest

from repro.machine.spec import XEON_E5_2680_V3, CacheLevel, MachineSpec


class TestCacheLevel:
    def test_private_capacity(self):
        l1 = CacheLevel("L1", 32 * 1024)
        assert l1.effective_capacity(12) == 32 * 1024

    def test_shared_capacity_divided(self):
        l3 = CacheLevel("L3", 30 * 1024 * 1024, shared=True)
        assert l3.effective_capacity(12) == 30 * 1024 * 1024 // 12

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0)


class TestXeonSpec:
    def test_paper_platform(self):
        assert XEON_E5_2680_V3.cores == 12
        assert XEON_E5_2680_V3.freq_ghz == 2.5
        assert XEON_E5_2680_V3.cache("L2").size_bytes == 256 * 1024

    def test_lanes(self):
        assert XEON_E5_2680_V3.lanes("float") == 8
        assert XEON_E5_2680_V3.lanes("double") == 4

    def test_peak_flops(self):
        # 12 cores × 2.5 GHz × 2 FMA × 4 lanes × 2 flops = 480 DP GFlop/s
        assert XEON_E5_2680_V3.peak_gflops("double") == pytest.approx(480.0)
        assert XEON_E5_2680_V3.peak_gflops("float") == pytest.approx(960.0)

    def test_unknown_cache(self):
        with pytest.raises(KeyError):
            XEON_E5_2680_V3.cache("L4")

    def test_needs_cache_levels(self):
        with pytest.raises(ValueError):
            MachineSpec("m", cores=1, freq_ghz=1.0, caches=())


class TestBandwidthSaturation:
    def test_single_core_value(self):
        bw1 = XEON_E5_2680_V3.mem_bandwidth(1)
        assert bw1 == pytest.approx(XEON_E5_2680_V3.mem_bandwidth_single_gbs, rel=1e-9)

    def test_monotone_in_threads(self):
        prev = 0.0
        for t in range(1, 13):
            bw = XEON_E5_2680_V3.mem_bandwidth(t)
            assert bw > prev
            prev = bw

    def test_saturates_below_chip_limit(self):
        assert XEON_E5_2680_V3.mem_bandwidth(12) < XEON_E5_2680_V3.mem_bandwidth_gbs

    def test_clamped_to_core_count(self):
        assert XEON_E5_2680_V3.mem_bandwidth(64) == XEON_E5_2680_V3.mem_bandwidth(12)

    def test_cycle_time(self):
        assert XEON_E5_2680_V3.cycle_time_s() == pytest.approx(0.4e-9)
