"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngFactory, as_generator, hash_seed, spawn


class TestHashSeed:
    def test_deterministic(self):
        assert hash_seed("a", 1, (2, 3)) == hash_seed("a", 1, (2, 3))

    def test_distinct_keys(self):
        seen = {hash_seed("k", i) for i in range(1000)}
        assert len(seen) == 1000

    def test_order_sensitive(self):
        assert hash_seed("a", "b") != hash_seed("b", "a")

    def test_boundary_injection_resistant(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert hash_seed("ab", "c") != hash_seed("a", "bc")

    @given(st.integers(), st.text(max_size=20))
    def test_range(self, a, b):
        h = hash_seed(a, b)
        assert 0 <= h < 2**64


class TestSpawn:
    def test_same_key_same_stream(self):
        a = spawn(5, "x").random(8)
        b = spawn(5, "x").random(8)
        assert np.array_equal(a, b)

    def test_different_key_different_stream(self):
        a = spawn(5, "x").random(8)
        b = spawn(5, "y").random(8)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = spawn(5, "x").random(8)
        b = spawn(6, "x").random(8)
        assert not np.array_equal(a, b)

    def test_none_seed_is_zero(self):
        assert np.array_equal(spawn(None, "k").random(4), spawn(0, "k").random(4))


class TestAsGenerator:
    def test_int_seed(self):
        assert np.array_equal(as_generator(3).random(4), as_generator(3).random(4))

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngFactory:
    def test_named_streams_reproducible(self):
        f = RngFactory(9)
        assert np.array_equal(f.get("a").random(4), f.get("a").random(4))

    def test_kwargs_fold_into_key(self):
        f = RngFactory(9)
        assert not np.array_equal(
            f.get("a", trial=0).random(4), f.get("a", trial=1).random(4)
        )

    def test_kwargs_order_insensitive(self):
        f = RngFactory(9)
        a = f.get("a", x=1, y=2).random(4)
        b = f.get("a", y=2, x=1).random(4)
        assert np.array_equal(a, b)

    def test_child_namespacing(self):
        f = RngFactory(9)
        child = f.child("ns")
        assert not np.array_equal(child.get("a").random(4), f.get("a").random(4))

    def test_permutation_deterministic(self):
        f = RngFactory(1)
        items = list(range(20))
        assert f.permutation(items, "p") == f.permutation(items, "p")
        assert sorted(f.permutation(items, "p")) == items

    def test_integers_in_range(self):
        f = RngFactory(2)
        vals = f.integers(100, 3, 7, "i")
        assert vals.min() >= 3 and vals.max() < 7

    def test_seed_property(self):
        assert RngFactory(11).seed == 11
        assert RngFactory(None).seed == 0
