"""Tests for stopwatch and duration formatting."""

import time

from repro.util.timing import Stopwatch, format_seconds


class TestFormatSeconds:
    def test_sub_millisecond(self):
        assert format_seconds(0.0001) == "<1 ms"

    def test_milliseconds(self):
        assert "ms" in format_seconds(0.25)

    def test_seconds(self):
        assert format_seconds(2.5).endswith("s")

    def test_minutes(self):
        assert format_seconds(240) == "4m 0s"

    def test_hours(self):
        assert format_seconds(32 * 3600) == "32h 0m"

    def test_table2_values_roundtrip_shapes(self):
        # the formats the paper's Table II uses must all be producible
        assert format_seconds(115200).startswith("32h")
        assert format_seconds(26 * 60).startswith("26m")


class TestStopwatch:
    def test_lap_accumulates(self):
        sw = Stopwatch()
        with sw.lap("a"):
            time.sleep(0.01)
        with sw.lap("a"):
            time.sleep(0.01)
        assert sw.laps["a"] >= 0.02

    def test_total_sums_laps(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            pass
        assert sw.total() == sum(sw.laps.values())

    def test_report_mentions_names(self):
        sw = Stopwatch()
        with sw.lap("train"):
            pass
        assert "train" in sw.report()
