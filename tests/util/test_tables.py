"""Tests for ASCII table/series rendering."""

import pytest

from repro.util.tables import Table, format_histogram, format_series, format_table


class TestTable:
    def test_basic_render(self):
        t = Table(["name", "value"])
        t.add_row(["x", 1.25])
        out = t.render(floatfmt=".2f")
        assert "name" in out and "1.25" in out
        assert out.splitlines()[1].startswith("----")

    def test_row_length_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_add_mapping_with_default(self):
        t = Table(["a", "b"])
        t.add_mapping({"a": 1})
        assert t.rows[0] == [1, ""]

    def test_sort_by(self):
        t = Table(["k", "v"])
        t.add_row(["b", 2])
        t.add_row(["a", 1])
        t.sort_by("k")
        assert [r[0] for r in t.rows] == ["a", "b"]
        t.sort_by("v", reverse=True)
        assert [r[1] for r in t.rows] == [2, 1]

    def test_title_rendered_first(self):
        t = Table(["a"], title="My Title")
        t.add_row([1])
        assert t.render().splitlines()[0] == "My Title"

    def test_alignment_pads_columns(self):
        t = Table(["col", "v"])
        t.add_row(["short", 1])
        t.add_row(["a-much-longer-cell", 2])
        lines = t.render().splitlines()
        # the separator between first and second column is aligned
        assert lines[1].index("|") == lines[2].index("|") == lines[3].index("|")


class TestFormatHelpers:
    def test_format_table_one_shot(self):
        out = format_table(["x"], [[1], [2]])
        assert out.count("\n") == 3

    def test_format_series_aligns_columns(self):
        out = format_series([1, 2], {"a": [0.5, 0.6], "b": [1.0, 2.0]}, x_label="n")
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "n"
        assert "0.6" in out and "2" in out

    def test_format_histogram_counts(self):
        out = format_histogram([0.1, 0.1, 0.9], bins=2, lo=0.0, hi=1.0)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("2")
        assert lines[1].endswith("1")

    def test_format_histogram_empty(self):
        assert format_histogram([]) == "(empty)"
