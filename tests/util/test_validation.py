"""Tests for validation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_type,
    is_power_of_two,
)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", 3, int) == 3

    def test_rejects_with_name(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "no", int)

    def test_multiple_types(self):
        assert check_type("x", 2.5, int, float) == 2.5


class TestCheckPositive:
    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("n", 0)

    def test_non_strict_accepts_zero(self):
        assert check_positive("n", 0, strict=False) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="n must be"):
            check_positive("n", -1, strict=False)


class TestCheckInRange:
    def test_bounds_inclusive(self):
        assert check_in_range("v", 1, 1, 3) == 1
        assert check_in_range("v", 3, 1, 3) == 3

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("v", 4, 1, 3)


class TestPowerOfTwo:
    def test_known_values(self):
        assert [v for v in range(1, 17) if is_power_of_two(v)] == [1, 2, 4, 8, 16]

    def test_zero_and_negative(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)

    def test_non_integer(self):
        assert not is_power_of_two(2.0)  # type: ignore[arg-type]

    @given(st.integers(min_value=0, max_value=62))
    def test_all_powers_accepted(self, exp):
        assert is_power_of_two(1 << exp)

    @given(st.integers(min_value=3, max_value=10**9).filter(lambda v: v & (v - 1)))
    def test_non_powers_rejected(self, v):
        assert not is_power_of_two(v)
        with pytest.raises(ValueError):
            check_power_of_two("v", v)
