"""Tests for tuning parameter types."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tuning.parameters import IntParameter, PowerOfTwoParameter


class TestIntParameter:
    def test_cardinality(self):
        assert IntParameter("u", 0, 8).cardinality() == 9

    def test_clip(self):
        p = IntParameter("u", 0, 8)
        assert p.clip(-3) == 0
        assert p.clip(12.7) == 8
        assert p.clip(4.4) == 4

    def test_contains(self):
        p = IntParameter("u", 0, 8)
        assert p.contains(0) and p.contains(8)
        assert not p.contains(9)

    def test_default_grid_includes_lo_zero(self):
        assert IntParameter("u", 0, 8).grid() == (0, 1, 2, 4, 8)

    def test_grid_override(self):
        p = IntParameter("u", 0, 8, grid_values=(0, 2, 4, 8))
        assert p.grid() == (0, 2, 4, 8)

    def test_grid_override_validated(self):
        with pytest.raises(ValueError, match="outside"):
            IntParameter("u", 0, 8, grid_values=(0, 16))

    def test_bad_range(self):
        with pytest.raises(ValueError):
            IntParameter("u", 5, 2)

    @given(st.integers(-100, 100))
    def test_from_unit_inverse_of_normalize(self, v):
        p = IntParameter("u", 0, 8)
        legal = p.clip(v)
        assert p.from_unit(p.normalize(legal)) == legal

    def test_sample_in_range(self):
        p = IntParameter("u", 0, 8)
        rng = np.random.default_rng(0)
        vals = [p.sample(rng) for _ in range(200)]
        assert min(vals) >= 0 and max(vals) <= 8
        assert len(set(vals)) == 9  # all values reachable

    def test_neighbor_stays_legal(self):
        p = IntParameter("u", 0, 8)
        rng = np.random.default_rng(1)
        for _ in range(100):
            assert p.contains(p.neighbor(4, rng))


class TestPowerOfTwoParameter:
    def test_cardinality(self):
        assert PowerOfTwoParameter("bx", 2, 1024).cardinality() == 10

    def test_bounds_must_be_pow2(self):
        with pytest.raises(ValueError):
            PowerOfTwoParameter("bx", 3, 1024)

    def test_clip_to_nearest_pow2(self):
        p = PowerOfTwoParameter("bx", 2, 1024)
        assert p.clip(100) == 128
        assert p.clip(89) == 64  # log-space rounding: 89 < sqrt(64*128) ≈ 90.5
        assert p.clip(0) == 2
        assert p.clip(10**9) == 1024

    def test_grid(self):
        p = PowerOfTwoParameter("c", 1, 8)
        assert p.grid() == (1, 2, 4, 8)

    def test_degenerate_range(self):
        p = PowerOfTwoParameter("bz", 1, 1)
        assert p.grid() == (1,)
        assert p.normalize(1) == 0.0
        assert p.sample(np.random.default_rng(0)) == 1

    def test_normalize_log_scale(self):
        p = PowerOfTwoParameter("bx", 2, 1024)
        mid = p.normalize(64)  # exponent 6 of range 1..10
        assert abs(mid - 5 / 9) < 1e-12

    @given(st.integers(0, 12))
    def test_from_unit_roundtrip(self, exp):
        p = PowerOfTwoParameter("bx", 2, 1024)
        v = p.clip(1 << exp)
        assert p.from_unit(p.normalize(v)) == v

    def test_neighbor_moves_on_exponent_axis(self):
        p = PowerOfTwoParameter("bx", 2, 1024)
        rng = np.random.default_rng(2)
        for _ in range(100):
            n = p.neighbor(64, rng)
            assert p.contains(n)

    def test_neighbor_never_stays_put_for_unit_scale(self):
        p = PowerOfTwoParameter("bx", 2, 1024)
        rng = np.random.default_rng(3)
        moves = [p.neighbor(64, rng, scale=0.5) for _ in range(50)]
        assert any(m != 64 for m in moves)

    def test_sample_distribution_covers_grid(self):
        p = PowerOfTwoParameter("bx", 2, 1024)
        rng = np.random.default_rng(4)
        vals = {p.sample(rng) for _ in range(500)}
        assert vals == set(p.grid())
