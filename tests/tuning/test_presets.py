"""Tests for the pre-defined hierarchical candidate sets (§VI-A)."""

from repro.tuning.presets import (
    PRESET_SIZE_2D,
    PRESET_SIZE_3D,
    hierarchical_pow2_candidates,
    preset_candidates,
)
from repro.tuning.space import patus_space


class TestSizes:
    def test_paper_sizes(self):
        assert len(preset_candidates(2)) == PRESET_SIZE_2D == 1600
        assert len(preset_candidates(3)) == PRESET_SIZE_3D == 8640

    def test_unique(self):
        for dims in (2, 3):
            cands = preset_candidates(dims)
            assert len(set(cands)) == len(cands)

    def test_invalid_dims(self):
        import pytest

        with pytest.raises(ValueError):
            preset_candidates(4)


class TestHierarchicalOrder:
    def test_coarsest_first(self):
        cands = hierarchical_pow2_candidates(patus_space(3))
        first = cands[0]
        # level-0 everywhere: smallest grid value of every parameter
        assert first.as_tuple() == (2, 2, 2, 0, 1)

    def test_all_pow2_grid_values(self):
        space = patus_space(3)
        grids = [set(p.grid()) for p in space.parameters]
        for cand in preset_candidates(3):
            for value, grid in zip(cand.as_tuple(), grids):
                assert value in grid

    def test_truncation_is_prefix(self):
        full = hierarchical_pow2_candidates(patus_space(3))
        short = hierarchical_pow2_candidates(patus_space(3), 100)
        assert full[:100] == short

    def test_refinement_levels_monotone(self):
        space = patus_space(3)
        grids = [p.grid() for p in space.parameters]
        cands = hierarchical_pow2_candidates(space)
        max_levels = [
            max(g.index(v) for g, v in zip(grids, c.as_tuple())) for c in cands
        ]
        assert max_levels == sorted(max_levels)

    def test_truncated_3d_covers_coarse_grid_fully(self):
        """The 8640 subset must contain every combination up to some level."""
        space = patus_space(3)
        grids = [p.grid() for p in space.parameters]
        kept = set(preset_candidates(3))
        # every combination with all levels <= 3 must be present
        from itertools import product

        coarse = [g[: min(4, len(g))] for g in grids]
        missing = [
            combo
            for combo in product(*coarse)
            if tuple(combo) not in {c.as_tuple() for c in kept}
        ]
        assert not missing

    def test_2d_set_is_full_product(self):
        space = patus_space(2)
        n = 1
        for p in space.parameters:
            n *= len(p.grid())
        assert len(hierarchical_pow2_candidates(space)) == n == 1600
