"""Tests for TuningSpace operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuning.space import TuningSpace, patus_space
from repro.tuning.vector import TuningVector


class TestPatusSpace:
    def test_3d_has_five_params(self):
        s = patus_space(3)
        assert s.names == ("bx", "by", "bz", "unroll", "chunk")

    def test_2d_pins_bz(self):
        s = patus_space(2)
        assert s.parameter("bz").grid() == (1,)
        v = s.random_vector(0)
        assert v.bz == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            patus_space(4)

    def test_cardinality_order_of_magnitude(self):
        # the paper quotes ~10^6.5 for OpenTuner's stencil space
        assert 10**4 < patus_space(3).cardinality() < 10**6

    def test_2d_pow2_grid_product_is_1600(self):
        s = patus_space(2)
        n = 1
        for p in s.parameters:
            n *= len(p.grid())
        assert n == 1600


class TestSampling:
    def test_random_vectors_unique(self):
        s = patus_space(3)
        vecs = s.random_vectors(200, rng=0)
        assert len(set(vecs)) == 200

    def test_random_vectors_deterministic(self):
        s = patus_space(3)
        assert s.random_vectors(20, rng=5) == s.random_vectors(20, rng=5)

    def test_unique_fallback_when_space_tiny(self):
        s = TuningSpace(
            dims=2,
            parameters=patus_space(2, block_lo=2, block_hi=4, unroll_hi=0, chunk_hi=1).parameters,
        )
        # space has 2*2*1*1*1 = 4 distinct vectors; asking for 30 must not hang
        vecs = s.random_vectors(30, rng=0)
        assert len(vecs) == 30

    def test_contains_all_samples(self):
        s = patus_space(3)
        for v in s.random_vectors(100, rng=3):
            assert s.contains(v)


class TestRepairAndMoves:
    def test_clip_repairs_arbitrary_reals(self):
        s = patus_space(3)
        v = s.clip([3.7, -10.0, 5000.0, 4.2, 0.1])
        assert s.contains(v)

    def test_clip_length_check(self):
        with pytest.raises(ValueError):
            patus_space(3).clip([1, 2, 3])

    def test_neighbor_legal_and_close(self):
        s = patus_space(3)
        rng = np.random.default_rng(0)
        start = TuningVector(64, 64, 64, 4, 2)
        for _ in range(50):
            n = s.neighbor(start, rng)
            assert s.contains(n)
            diffs = sum(a != b for a, b in zip(n.as_tuple(), start.as_tuple()))
            assert diffs <= 1

    def test_crossover_genes_from_parents(self):
        s = patus_space(3)
        rng = np.random.default_rng(1)
        a = TuningVector(2, 4, 8, 1, 1)
        b = TuningVector(1024, 512, 256, 8, 8)
        for _ in range(30):
            child = s.crossover(a, b, rng)
            for gene, ga, gb in zip(child.as_tuple(), a.as_tuple(), b.as_tuple()):
                assert gene in (ga, gb)


class TestEncoding:
    def test_encode_decode_roundtrip(self):
        s = patus_space(3)
        vecs = s.random_vectors(20, rng=7)
        arr = s.encode(vecs)
        assert arr.shape == (20, 5)
        assert s.decode(arr) == vecs

    def test_normalize_in_unit_interval(self):
        s = patus_space(3)
        norm = s.normalize(s.random_vectors(50, rng=8))
        assert norm.min() >= 0.0 and norm.max() <= 1.0

    @settings(max_examples=30)
    @given(st.integers(0, 10_000))
    def test_unit_roundtrip(self, seed):
        s = patus_space(3)
        v = s.random_vector(seed)
        assert s.from_unit(s.to_unit(v)) == v

    def test_from_unit_shape_check(self):
        with pytest.raises(ValueError):
            patus_space(3).from_unit(np.zeros(3))

    def test_param_order_enforced(self):
        s = patus_space(3)
        with pytest.raises(ValueError, match="named"):
            TuningSpace(dims=3, parameters=s.parameters[::-1])
