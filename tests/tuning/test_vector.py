"""Tests for TuningVector."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tuning.vector import TuningVector


class TestConstruction:
    def test_defaults(self):
        t = TuningVector(16, 8)
        assert t.bz == 1 and t.unroll == 0 and t.chunk == 1

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError):
            TuningVector(0, 8)

    def test_rejects_negative_unroll(self):
        with pytest.raises(ValueError):
            TuningVector(8, 8, 1, -1)

    def test_numpy_ints_coerced(self):
        t = TuningVector(np.int64(8), np.int64(4), np.int64(2), np.int64(1), np.int64(1))
        assert isinstance(t.bx, int)

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            TuningVector(8.5, 4)  # type: ignore[arg-type]


class TestViews:
    def test_block_volume(self):
        assert TuningVector(4, 4, 4).block_volume == 64

    def test_effective_unroll(self):
        assert TuningVector(2, 2, unroll=0).effective_unroll == 1
        assert TuningVector(2, 2, unroll=4).effective_unroll == 4

    def test_tuple_roundtrip(self):
        t = TuningVector(64, 8, 4, 2, 2)
        assert TuningVector.from_iterable(t.as_tuple()) == t

    def test_from_iterable_rounds(self):
        t = TuningVector.from_iterable([8.4, 4.0, 2.0, 1.6, 1.0])
        assert t == TuningVector(8, 4, 2, 2, 1)

    def test_from_iterable_length(self):
        with pytest.raises(ValueError, match="5 values"):
            TuningVector.from_iterable([1, 2, 3])

    def test_replace(self):
        t = TuningVector(8, 8, 8, 2, 1).replace(unroll=4)
        assert t.unroll == 4 and t.bx == 8

    def test_iter_and_str(self):
        t = TuningVector(8, 4, 2, 1, 1)
        assert list(t) == [8, 4, 2, 1, 1]
        assert "bx=8" in str(t)

    @given(
        st.integers(1, 1024),
        st.integers(1, 1024),
        st.integers(1, 1024),
        st.integers(0, 8),
        st.integers(1, 16),
    )
    def test_ordered_and_hashable(self, bx, by, bz, u, c):
        t = TuningVector(bx, by, bz, u, c)
        assert t == TuningVector(*t.as_tuple())
        assert hash(t) == hash(TuningVector(*t.as_tuple()))
        assert not (t < t)
