"""The resilience layer under injected faults: deadlines, health routing,
degradation, shedding — and a compact chaos drill combining all of them.

The unit half drives the :class:`~repro.service.health.CircuitBreaker`
and :class:`~repro.service.degrade.FallbackStore` with a fake clock — no
processes, no sleeping.  The process half runs real worker fleets with
:class:`~repro.service.chaos.ChaosConfig` fault injections (dropped and
corrupted replies, slow-loris loops) and asserts the coordinator's
obligations: no request hangs, no request is lost, sick workers leave
routing and recovered workers come back, and degraded answers say so.

Process tests use ``start_method="fork"`` for millisecond spawns; chaos
injections are deterministic functions of per-worker request ordinals, so
every run exercises the identical fault script.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.service.chaos import ChaosConfig, ChaosState, corrupt_registry_tags
from repro.service.degrade import (
    ClusterOverloadedError,
    DeadlineExceededError,
    FallbackStore,
)
from repro.service.health import CircuitBreaker, HealthState, ResilienceConfig
from repro.service.routing import ShardRouter
from repro.stencil.execution import instance_hash
from tests.cluster.harness import (
    assert_response_matches,
    expected_answer,
    kill_and_settle,
    wait_until,
    workload_requests,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# unit: the circuit breaker state machine
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_failure_path_healthy_suspect_quarantined(self):
        clock = FakeClock()
        b = CircuitBreaker(
            suspect_after=1, quarantine_after=3, failure_window_s=30.0, clock=clock
        )
        assert b.state is HealthState.HEALTHY
        assert b.record_failure("timeout") is HealthState.SUSPECT
        assert b.record_failure("timeout") is HealthState.SUSPECT
        assert b.record_failure("corrupt-frame") is HealthState.QUARANTINED
        # sticky: more failures keep it open, successes do not close it
        assert b.record_failure("timeout") is HealthState.QUARANTINED
        assert b.record_success() is HealthState.QUARANTINED

    def test_success_heals_a_suspect(self):
        clock = FakeClock()
        b = CircuitBreaker(clock=clock)
        b.record_failure("timeout")
        assert b.state is HealthState.SUSPECT
        assert b.record_success() is HealthState.HEALTHY
        # healing cleared the window: the next failure starts from scratch
        assert b.recent_failures == 0

    def test_rolling_window_forgets_old_failures(self):
        clock = FakeClock()
        b = CircuitBreaker(quarantine_after=3, failure_window_s=10.0, clock=clock)
        b.record_failure("timeout")
        b.record_failure("timeout")
        clock.now += 11.0  # both age out of the window
        assert b.record_failure("timeout") is HealthState.SUSPECT, (
            "one bad moment an hour ago must not combine with one now"
        )

    def test_probe_readmission_closes_the_breaker(self):
        clock = FakeClock()
        b = CircuitBreaker(quarantine_after=2, probe_interval_s=1.0, clock=clock)
        b.record_failure("timeout")
        b.record_failure("timeout")
        assert b.state is HealthState.QUARANTINED
        assert b.should_probe()
        b.record_probe_sent()
        assert not b.should_probe(), "probes must respect their spacing"
        clock.now += 1.5
        assert b.should_probe()
        assert b.record_probe_ok() is HealthState.HEALTHY
        assert b.recent_failures == 0

    def test_healthy_workers_are_never_probed(self):
        b = CircuitBreaker(clock=FakeClock())
        assert not b.should_probe()

    def test_quarantine_shortcut_and_transition_log(self):
        clock = FakeClock()
        b = CircuitBreaker(clock=clock)
        b.quarantine("heartbeat")
        assert b.state is HealthState.QUARANTINED
        moves = [(src, dst, why) for _, src, dst, why in b.transitions]
        assert moves == [("healthy", "quarantined", "heartbeat")]
        snap = b.snapshot()
        assert snap["state"] == "quarantined"
        assert snap["failure_kinds"] == {"heartbeat": 1}

    def test_reset_for_a_replacement_process(self):
        b = CircuitBreaker(clock=FakeClock())
        b.quarantine("crash")
        b.reset()
        assert b.state is HealthState.HEALTHY
        assert b.recent_failures == 0

    def test_from_config_carries_thresholds(self):
        cfg = ResilienceConfig(suspect_after=2, quarantine_after=5)
        b = CircuitBreaker.from_config(cfg, clock=FakeClock())
        assert b.suspect_after == 2 and b.quarantine_after == 5


class TestResilienceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"suspect_after": 0},
            {"suspect_after": 3, "quarantine_after": 2},
            {"default_deadline_s": 0.0},
            {"monitor_interval_s": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestChaosDeterminism:
    def test_fault_script_is_a_function_of_ordinals(self):
        cfg = ChaosConfig(corrupt_reply_every=2, drop_reply_every=3, burst_n=6)
        fates = []
        state = ChaosState(cfg)
        for _ in range(8):
            fates.append(state.reply_fate(state.next_request()))
        replay = ChaosState(cfg)
        assert fates == [replay.reply_fate(replay.next_request()) for _ in range(8)]
        assert fates[6:] == ["send", "send"], "faults must end with the burst"


class TestFallbackStore:
    def test_remember_and_lookup_roundtrip(self, cluster_tuner):
        (instance, candidates), = workload_requests(1, seed=5)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        store = FallbackStore(max_entries=4)
        store.remember(instance, candidates, ranked, scores, "v0001")
        hit = store.lookup(instance, candidates)
        assert hit is not None and hit.cached
        assert hit.ranked == ranked
        assert np.array_equal(hit.scores, scores)
        assert hit.model_version == "v0001"
        assert store.lookup(instance, list(reversed(candidates))) is None, (
            "a different candidate set must not alias"
        )

    def test_lru_bound(self, cluster_tuner):
        requests = workload_requests(6, seed=6)
        store = FallbackStore(max_entries=2)
        for instance, candidates in requests:
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            store.remember(instance, candidates, ranked, scores, "v0001")
        assert len(store) <= 2


# ---------------------------------------------------------------------------
# process: real fleets under injected faults
# ---------------------------------------------------------------------------


def request_owned_by(worker_id: int, n_workers: int, seed: int = 21):
    """A deterministic request whose shard is ``worker_id``."""
    for instance, candidates in workload_requests(64, seed=seed):
        if ShardRouter(range(n_workers)).route(instance_hash(instance)) == worker_id:
            return instance, candidates
    raise AssertionError("no request routed to the requested worker")


class TestRetriesAndDeadlines:
    def test_dropped_replies_recovered_by_retry(self, make_cluster, cluster_tuner):
        """A worker that swallows its first replies delays the answers,
        never loses them: the attempt timeout re-dispatches."""
        cluster = make_cluster(
            n_workers=1,
            start_method="fork",
            restart_workers=False,
            chaos=ChaosConfig(drop_reply_every=1, burst_n=2),
            resilience=ResilienceConfig(
                attempt_timeout_s=0.4,
                max_retries=3,
                retry_backoff_s=0.02,
                monitor_interval_s=0.02,
                quarantine_after=10,  # the sole worker must stay routable
            ),
        )
        instance, candidates = workload_requests(1, seed=31)[0]
        response = cluster.submit(instance, candidates).result(timeout=60)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert_response_matches(response, ranked, scores)
        assert response.attempts >= 2, "the dropped replies must have cost retries"
        assert not response.degraded
        assert cluster.timeouts >= 1
        assert cluster.retries_scheduled >= 1

    def test_deadline_exceeded_is_explicit_in_strict_mode(self, make_cluster):
        """With degradation off, a request that cannot be answered inside
        its budget fails with DeadlineExceededError — promptly, not after
        the worker finally answers."""
        cluster = make_cluster(
            n_workers=1,
            start_method="fork",
            restart_workers=False,
            chaos=ChaosConfig(latency_s=1.5, latency_every=1),
            resilience=ResilienceConfig(max_retries=0, monitor_interval_s=0.02),
        )
        instance, candidates = workload_requests(1, seed=33)[0]
        start = time.monotonic()
        future = cluster.submit(instance, candidates, deadline_s=0.3)
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=60)
        assert time.monotonic() - start < 1.4, (
            "the deadline must fire before the injected latency elapses"
        )
        assert cluster.timeouts >= 1

    def test_corrupted_reply_frames_counted_and_survived(
        self, make_cluster, cluster_tuner
    ):
        """A garbage frame where a pickle should be loses one reply, not
        the pipe: the parent counts it and the retry recovers the answer."""
        cluster = make_cluster(
            n_workers=1,
            start_method="fork",
            restart_workers=False,
            chaos=ChaosConfig(corrupt_reply_every=1, burst_n=1),
            resilience=ResilienceConfig(
                attempt_timeout_s=0.4,
                max_retries=2,
                retry_backoff_s=0.02,
                monitor_interval_s=0.02,
                quarantine_after=10,
            ),
        )
        instance, candidates = workload_requests(1, seed=35)[0]
        response = cluster.submit(instance, candidates).result(timeout=60)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert_response_matches(response, ranked, scores)
        assert cluster.corrupted_frames >= 1
        assert response.attempts >= 2
        # the reply after the burst healed the suspect breaker
        assert wait_until(
            lambda: cluster.worker_health(0) is HealthState.HEALTHY, timeout_s=10
        )
        assert cluster.crashes == 0, "frame corruption must never look like a crash"


class TestHealthRouting:
    def test_slow_loris_quarantined_then_readmitted(
        self, make_cluster, cluster_tuner
    ):
        """A worker whose loop blocks goes heartbeat-silent: the cluster
        quarantines it, requeues its pending request to the healthy shard,
        and readmits it once its loop answers a probe again."""
        loris = 1
        cluster = make_cluster(
            n_workers=2,
            start_method="fork",
            restart_workers=False,
            chaos={loris: ChaosConfig(slow_loris_s=2.0, burst_n=1)},
            resilience=ResilienceConfig(
                heartbeat_interval_s=0.05,
                heartbeat_stale_s=0.4,
                probe_interval_s=0.1,
                monitor_interval_s=0.02,
            ),
        )
        # let both workers establish a heartbeat baseline
        assert wait_until(lambda: len(cluster.alive_workers()) == 2, timeout_s=15)
        instance, candidates = request_owned_by(loris, n_workers=2, seed=21)
        response = cluster.submit(instance, candidates).result(timeout=60)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert_response_matches(response, ranked, scores)
        assert response.worker_id != loris, "the hung shard cannot have answered"
        assert cluster.quarantines >= 1
        assert any(
            e["type"] == "quarantine" and e["worker"] == loris
            for e in cluster.events
        )
        # the loris ends, heartbeats resume, a probe round-trips: readmit
        assert wait_until(lambda: cluster.readmissions >= 1, timeout_s=30), (
            "a recovered worker must get its shard back"
        )
        assert wait_until(lambda: loris in cluster.alive_workers(), timeout_s=10)
        assert any(
            e["type"] == "readmit" and e["worker"] == loris for e in cluster.events
        )
        # and it serves its shard again, bit-identically
        again = cluster.submit(instance, candidates).result(timeout=60)
        assert_response_matches(again, ranked, scores)
        assert cluster.crashes == 0, "the loris process never died"


class TestDegradationAndShedding:
    def test_degraded_answers_from_store_and_scorer(
        self, make_cluster, cluster_tuner
    ):
        """With every worker dead, a remembered ranking replays from the
        coordinator's store and an unseen query is scored locally — both
        explicitly degraded, both bit-identical to the oracle."""
        cluster = make_cluster(
            n_workers=1,
            start_method="fork",
            restart_workers=False,
            resilience=ResilienceConfig(degraded_answers=True),
        )
        seen, unseen = workload_requests(2, seed=41, shift_at=1)
        warm = cluster.submit(*seen).result(timeout=60)
        assert not warm.degraded
        kill_and_settle(cluster, 0)
        replay = cluster.submit(*seen).result(timeout=60)
        assert replay.degraded and replay.cached and replay.worker_id == -1
        ranked, scores = expected_answer(cluster_tuner, *seen)
        assert_response_matches(replay, ranked, scores)
        scored = cluster.submit(*unseen).result(timeout=60)
        assert scored.degraded and not scored.cached and scored.worker_id == -1
        ranked, scores = expected_answer(cluster_tuner, *unseen)
        assert_response_matches(scored, ranked, scores)
        assert cluster.degraded_served == 2
        stats_resilience = cluster.stats(timeout_s=5)["resilience"]
        assert stats_resilience["degraded_served"] == 2
        assert stats_resilience["fallback_scored"] == 1

    def test_degraded_top_k_is_sliced(self, make_cluster, cluster_tuner):
        cluster = make_cluster(
            n_workers=1,
            start_method="fork",
            restart_workers=False,
            resilience=ResilienceConfig(degraded_answers=True),
        )
        instance, candidates = workload_requests(1, seed=43)[0]
        cluster.submit(instance, candidates).result(timeout=60)
        kill_and_settle(cluster, 0)
        response = cluster.submit(instance, candidates, top_k=3).result(timeout=60)
        assert response.degraded
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert response.ranked == ranked[:3]

    def test_strict_mode_still_fails_cleanly_when_all_dead(self, make_cluster):
        """The pre-resilience contract is the default: no degradation
        means the legacy 'no alive workers' RuntimeError."""
        cluster = make_cluster(
            n_workers=1, start_method="fork", restart_workers=False
        )
        kill_and_settle(cluster, 0)
        instance, candidates = workload_requests(1, seed=45)[0]
        with pytest.raises(RuntimeError, match="no alive workers"):
            cluster.submit(instance, candidates).result(timeout=60)

    def test_backlog_sheds_at_the_front_door(self, make_cluster):
        cluster = make_cluster(
            n_workers=1,
            start_method="fork",
            resilience=ResilienceConfig(max_queue_depth=0),
        )
        instance, candidates = workload_requests(1, seed=47)[0]
        with pytest.raises(ClusterOverloadedError):
            cluster.submit(instance, candidates)
        assert cluster.shed_requests == 1


class TestErrorReplyPath:
    def test_worker_error_travels_back_and_worker_stays_healthy(
        self, make_cluster, cluster_tuner
    ):
        """A per-request failure (unknown model ref) is the *request's*
        problem: the exception crosses the wire, the worker neither dies
        nor loses health, and the next request is served normally."""
        cluster = make_cluster(n_workers=1, start_method="fork")
        instance, candidates = workload_requests(1, seed=49)[0]
        with pytest.raises(KeyError):
            cluster.submit(instance, candidates, model="no-such-tag").result(
                timeout=60
            )
        assert cluster.crashes == 0
        assert cluster.worker_health(0) is HealthState.HEALTHY
        response = cluster.submit(instance, candidates).result(timeout=60)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert_response_matches(response, ranked, scores)


class TestPartialStats:
    def test_stats_timeout_returns_partial_and_cleans_up(self, make_cluster):
        """A hung worker must cost stats() its row, not the whole call —
        and its orphaned stats future must not leak."""
        loris = 1
        cluster = make_cluster(
            n_workers=2,
            start_method="fork",
            restart_workers=False,
            # heartbeats off: this test isolates the stats path from the
            # quarantine machinery
            chaos={loris: ChaosConfig(slow_loris_s=1.5, burst_n=1)},
            resilience=ResilienceConfig(heartbeat_interval_s=0.0),
        )
        instance, candidates = request_owned_by(loris, n_workers=2, seed=23)
        future = cluster.submit(instance, candidates)
        time.sleep(0.4)  # let the loris start blocking its loop
        stats = cluster.stats(timeout_s=0.3)
        assert stats["missing_workers"] == [loris]
        assert set(stats["workers"]) == {0}
        assert stats["cluster"]["workers"] == 1
        assert cluster._workers[loris].stats_pending == {}, (
            "the timed-out stats future must be cleaned up, not leaked"
        )
        future.result(timeout=60)  # the loris eventually answers the request
        stats = cluster.stats(timeout_s=10)
        assert stats["missing_workers"] == []
        assert set(stats["workers"]) == {0, 1}


class TestCompactChaosDrill:
    def test_mixed_run_with_kill_loris_corruption_and_bad_registry_write(
        self, make_cluster, cluster_registry, cluster_tuner
    ):
        """The in-suite edition of the benchmark drill: 48 mixed requests
        against 3 workers while one is SIGKILLed, one slow-lorises, one
        corrupts reply frames, and a registry write is corrupted mid-run.
        Every request must complete — correct or explicitly degraded —
        with zero hangs and zero coordinator crashes, and the quarantined
        worker must be readmitted."""
        loris, corruptor, victim = 1, 2, 0
        cluster = make_cluster(
            n_workers=3,
            start_method="fork",
            restart_workers=True,
            chaos={
                loris: ChaosConfig(slow_loris_s=1.5, burst_n=1),
                corruptor: ChaosConfig(corrupt_reply_every=2, burst_n=4),
            },
            resilience=ResilienceConfig(
                default_deadline_s=30.0,
                attempt_timeout_s=0.5,
                max_retries=4,
                retry_backoff_s=0.02,
                degraded_answers=True,
                heartbeat_interval_s=0.05,
                heartbeat_stale_s=0.4,
                probe_interval_s=0.1,
                monitor_interval_s=0.02,
                quarantine_after=6,  # frame corruption alone must not unroute
            ),
        )
        assert wait_until(lambda: len(cluster.alive_workers()) == 3, timeout_s=15)
        requests = workload_requests(48, seed=51)
        futures = [cluster.submit(q, c) for q, c in requests[:24]]
        cluster.kill_worker(victim)
        corrupt_registry_tags(cluster_registry.root)
        futures += [cluster.submit(q, c) for q, c in requests[24:]]
        responses = [f.result(timeout=120) for f in futures]

        assert len(responses) == len(requests), "zero lost requests"
        for (instance, candidates), response in zip(requests, responses):
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
        assert cluster.crashes == 1
        assert cluster.corrupted_frames >= 1
        assert cluster.quarantines >= 1
        assert wait_until(lambda: cluster.readmissions >= 1, timeout_s=30), (
            "the recovered loris must be readmitted"
        )
        assert wait_until(
            lambda: set(cluster.alive_workers()) == {0, 1, 2}, timeout_s=30
        )
        # the corrupted tags.json was contained: reads fell back to the
        # mirror, nothing resolved wrong, and serving never noticed
        assert cluster_registry.resolve("prod") == "v0001"
        stats = cluster.stats(timeout_s=10)
        assert stats["missing_workers"] == []
