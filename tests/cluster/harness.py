"""Reusable helpers for the multi-process serving suites.

Everything the cluster tests need to be *deterministic about concurrency*:
request generators derived from :class:`~repro.online.workload.DriftingWorkload`
(two runs, or two processes, see the identical episode), single-process
oracles to compare cluster answers against bit-for-bit, and crash-injection
utilities that wait for the cluster's crash handling to settle instead of
sleeping and hoping.

The benchmark (``benchmarks/bench_cluster.py``) intentionally does not
import this module — benchmarks stay standalone scripts — but mirrors the
same workload shape.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.autotune.autotuner import OrdinalAutotuner
from repro.online.workload import DriftingWorkload
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = [
    "assert_response_matches",
    "expected_answer",
    "kill_and_settle",
    "wait_until",
    "workload_requests",
]


def workload_requests(
    n: int, seed: int = 0, candidates_per_request: int = 24, shift_at: "int | None" = None
) -> "list[tuple[StencilInstance, list[TuningVector]]]":
    """``n`` deterministic mixed-family ranking requests.

    Derived from :class:`DriftingWorkload`, so the stream covers both the
    phase-1 and phase-2 stencil families (the shift sits mid-stream by
    default), instances repeat (cache traffic) and every run — every
    *process* — regenerates the identical episode from the seed alone.
    """
    workload = DriftingWorkload(
        shift_at=n // 2 if shift_at is None else shift_at,
        seed=seed,
        candidates_per_request=candidates_per_request,
    )
    return list(workload.stream(n))


def expected_answer(
    tuner: OrdinalAutotuner,
    instance: StencilInstance,
    candidates: "Sequence[TuningVector]",
) -> "tuple[list[TuningVector], np.ndarray]":
    """The single-process oracle: ``rank_candidates`` ordering + scores.

    This is the exact bit-pattern every cluster worker must reproduce —
    same encoder rows, same ``X @ w``, same stable argsort tie-breaking.
    """
    candidates = list(candidates)
    scores = tuner.score_candidates(instance, candidates)
    ranked = tuner.rank_candidates(instance, candidates)
    return ranked, scores


def assert_response_matches(
    response,
    ranked: "list[TuningVector]",
    scores: np.ndarray,
    top_k: "int | None" = None,
) -> None:
    """Assert one cluster response is bit-identical to the oracle answer."""
    expected_list = ranked if top_k is None else ranked[:top_k]
    assert response.ranked == expected_list, (
        f"ranking diverged on worker {response.worker_id} "
        f"(model {response.model_version})"
    )
    if response.scores is not None:
        assert np.array_equal(np.asarray(response.scores), np.asarray(scores)), (
            f"scores diverged on worker {response.worker_id} — not bit-identical"
        )


def wait_until(
    predicate: "Callable[[], bool]", timeout_s: float = 10.0, interval_s: float = 0.02
) -> bool:
    """Poll ``predicate`` until true or the timeout passes."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def kill_and_settle(cluster, worker_id: int, timeout_s: float = 15.0) -> None:
    """SIGKILL one worker and wait for the crash path to finish.

    "Settled" means the exit was observed (crash counter moved) and either
    a replacement is routable or the worker stays out of the alive set —
    after this returns, new submissions cannot race the reroute.
    """
    crashes_before = cluster.crashes
    cluster.kill_worker(worker_id)
    assert wait_until(lambda: cluster.crashes > crashes_before, timeout_s), (
        "worker exit was never observed"
    )
    if cluster.restart_workers:
        assert wait_until(
            lambda: worker_id in cluster.alive_workers(), timeout_s
        ), "replacement worker never became routable"
