"""Cluster audit journal: fleet events exactly once, replay bit-identical.

The journal's job under fault injection: after a SIGKILL + restart the
artifact alone must prove what happened — every worker exit recorded
exactly once, every answer attributable to a model version, the checksum
chain intact — and two identically-seeded episodes must reconstruct the
same request→version map via :meth:`AuditJournal.replay`.
"""

from __future__ import annotations

from repro.obs.audit import AuditJournal
from tests.cluster.harness import kill_and_settle, workload_requests

N_REQUESTS = 24
KILL_AFTER = 12


def _episode(make_cluster, journal):
    """One deterministic serve → SIGKILL → restart → serve episode."""
    requests = workload_requests(N_REQUESTS, seed=91)
    cluster = make_cluster(n_workers=2, restart_workers=True, audit=journal)
    for instance, candidates in requests[:KILL_AFTER]:
        cluster.submit(instance, candidates, include_scores=False).result(
            timeout=120
        )
    kill_and_settle(cluster, 0)
    for instance, candidates in requests[KILL_AFTER:]:
        cluster.submit(instance, candidates, include_scores=False).result(
            timeout=120
        )
    return cluster


class TestClusterAudit:
    def test_fleet_events_exactly_once_and_chain_intact(self, make_cluster):
        journal = AuditJournal()
        cluster = _episode(make_cluster, journal)

        n = journal.verify()  # raises if any entry was dropped/edited
        assert n == len(journal) > 0
        assert cluster.stats()["audit_entries"] == len(journal)

        replay = AuditJournal.replay(journal.entries())
        # the one SIGKILL appears exactly once, as does its restart spawn
        assert len(replay["worker_exits"]) == cluster.crashes == 1
        assert replay["worker_exits"][0]["worker"] == 0
        assert replay["worker_exits"][0]["restarted"] is True
        spawns = [e["attrs"] for e in journal.events_of("spawn")]
        assert len(spawns) == 3  # two initial workers + one replacement
        assert sum(1 for s in spawns if s["restarts"] > 0) == 1
        # quarantine/readmit events mirror the cluster's own counters 1:1
        assert len(replay["quarantines"]) == cluster.quarantines
        assert len(replay["readmissions"]) == cluster.readmissions

        # every request answered exactly once, attributable to a version
        assert len(replay["answers"]) == N_REQUESTS
        assert replay["counts"]["answer"] == N_REQUESTS
        for answer in replay["answers"].values():
            assert answer["model_version"] == "v0001"
            assert answer["why"] in ("routed", "degraded-cache", "degraded-scored")

    def test_replay_reconstruction_is_bit_identical_across_runs(
        self, make_cluster
    ):
        """Two identically-seeded episodes (each with its own kill+restart)
        reconstruct the same request→model-version map from the journal."""

        def version_map(journal):
            replay = AuditJournal.replay(journal.entries())
            return {
                req_id: answer["model_version"]
                for req_id, answer in sorted(replay["answers"].items())
            }

        first, second = AuditJournal(), AuditJournal()
        _episode(make_cluster, first)
        _episode(make_cluster, second)
        assert version_map(first) == version_map(second)
        assert len(version_map(first)) == N_REQUESTS

    def test_trace_ids_join_audit_to_spans(self, make_cluster, tmp_path):
        """With tracing on, each answer entry carries its request's trace id,
        and the journal written to disk survives a verified reload."""
        from repro.obs.trace import TraceConfig

        journal = AuditJournal()
        requests = workload_requests(6, seed=97)
        cluster = make_cluster(
            n_workers=2, trace=TraceConfig(sample_rate=1.0), audit=journal
        )
        for instance, candidates in requests:
            cluster.submit(instance, candidates, include_scores=False).result(
                timeout=120
            )
        answers = journal.events_of("answer")
        assert len(answers) == 6
        assert all(len(e["trace_ids"]) == 1 for e in answers)

        path = tmp_path / "audit.jsonl"
        journal.write(path)
        reloaded = AuditJournal.load(path)
        assert reloaded.entries() == journal.entries()
