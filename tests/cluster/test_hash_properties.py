"""Property tests for the content hashes the cluster's correctness rides on.

Routing, per-worker caches and cross-process cache keys all assume three
properties of the hashing layer, pinned here over large synthetic
populations:

* **process-stability** — a fresh interpreter (different
  ``PYTHONHASHSEED``, no shared memory) computes identical
  ``instance_hash``, ``stable_hash``, ``content_key`` and
  ``candidate_set_hash`` values;
* **collision-freedom at working scale** — distinct instances, preset
  candidates and executions get distinct keys across 10k-sized
  populations (a collision would silently serve one instance another's
  ranking);
* **shard balance + minimal movement** — rendezvous routing spreads 10k
  instances evenly and reroutes only the dead worker's keys.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

from repro.online.workload import DriftingWorkload
from repro.service.cache import candidate_set_hash, intern_candidates
from repro.service.routing import ShardRouter
from repro.stencil.execution import StencilExecution, instance_hash
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import TRAINING_SHAPES
from repro.tuning.presets import preset_candidates

_FINGERPRINT_SCRIPT = """
import json
from repro.online.workload import DriftingWorkload
from repro.service.cache import candidate_set_hash
from repro.stencil.execution import StencilExecution, instance_hash

workload = DriftingWorkload(shift_at=4, seed=123)
rows = []
for i in range(8):
    instance, candidates = workload.request(i)
    rows.append({
        "instance": instance_hash(instance),
        "candidate_set": candidate_set_hash(candidates),
        "content_keys": [c.content_key for c in candidates[:4]],
        "execution": StencilExecution(instance, candidates[0]).stable_hash(),
    })
print(json.dumps(rows))
"""


def _fingerprint_rows() -> list[dict]:
    workload = DriftingWorkload(shift_at=4, seed=123)
    rows = []
    for i in range(8):
        instance, candidates = workload.request(i)
        rows.append(
            {
                "instance": instance_hash(instance),
                "candidate_set": candidate_set_hash(candidates),
                "content_keys": [c.content_key for c in candidates[:4]],
                "execution": StencilExecution(instance, candidates[0]).stable_hash(),
            }
        )
    return rows


def synthetic_instances(n: int) -> list[StencilInstance]:
    """``n`` distinct-content instances spanning families/radii/sizes/dtypes.

    Patterns are shared objects (pattern *content* enters the hash, so
    reuse is sound) to keep 10k constructions fast.
    """
    families = sorted(TRAINING_SHAPES)
    patterns = {
        (family, radius): TRAINING_SHAPES[family](3, radius)
        for family in families
        for radius in (1, 2)
    }
    instances = []
    i = 0
    while len(instances) < n:
        family = families[i % len(families)]
        radius = 1 + (i // len(families)) % 2
        dtype = ("float", "double")[(i // (2 * len(families))) % 2]
        # size varies without bound, so instance content never repeats
        base = 16 + 4 * (i // (4 * len(families)))
        kernel = StencilKernel(
            f"{family}-synth-r{radius}-{dtype}",
            (patterns[(family, radius)],),
            dtype=dtype,
            space_dims=3,
        )
        instances.append(StencilInstance(kernel, (base, base + 4, base + 8)))
        i += 1
    return instances


class TestProcessStability:
    def test_fresh_interpreter_reproduces_every_hash(self):
        """A subprocess with a different PYTHONHASHSEED and cold caches must
        compute the same fingerprints — the property that lets the parent
        route to a shard whose worker keys its cache independently."""
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "271828"  # str-hash randomization changes...
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(result.stdout) == _fingerprint_rows()

    def test_interned_digest_equals_recomputed_digest(self):
        workload = DriftingWorkload(shift_at=2, seed=5)
        _, candidates = workload.request(0)
        interned = intern_candidates(candidates)
        assert interned.content_hash == candidate_set_hash(candidates)
        assert intern_candidates(interned) is interned


class TestCollisionFreedom:
    def test_preset_content_keys_are_distinct(self):
        for dims in (2, 3):
            presets = preset_candidates(dims)
            keys = {c.content_key for c in presets}
            assert len(keys) == len(presets), f"content_key collision in {dims}-D presets"

    def test_preset_execution_hashes_are_distinct(self):
        """Every (instance, preset tuning) execution hashes uniquely — the
        key under which measurement noise and cost caches are shared."""
        workload = DriftingWorkload(shift_at=1, seed=9)
        instance, _ = workload.request(0)
        presets = preset_candidates(3)
        hashes = {StencilExecution(instance, t).stable_hash() for t in presets}
        assert len(hashes) == len(presets)

    def test_10k_synthetic_instances_hash_uniquely(self):
        instances = synthetic_instances(10_000)
        hashes = [instance_hash(q) for q in instances]
        assert len(set(hashes)) == len(hashes), "instance_hash collision at 10k scale"

    def test_candidate_set_hash_is_order_sensitive(self):
        workload = DriftingWorkload(shift_at=1, seed=13)
        _, candidates = workload.request(0)
        reversed_set = list(reversed(candidates))
        assert candidate_set_hash(candidates) != candidate_set_hash(reversed_set), (
            "scores align with request order, so permutations must key separately"
        )


class TestRoutingProperties:
    def test_shard_balance_over_10k_instances(self):
        instances = synthetic_instances(10_000)
        router = ShardRouter(range(4))
        counts = Counter(router.route(instance_hash(q)) for q in instances)
        assert set(counts) == {0, 1, 2, 3}
        for worker, count in counts.items():
            assert 2100 <= count <= 2900, (
                f"worker {worker} owns {count}/10000 — rendezvous weights skewed"
            )

    def test_killing_a_worker_moves_only_its_keys(self):
        keys = [instance_hash(q) for q in synthetic_instances(2_000)]
        router = ShardRouter(range(4))
        before = {key: router.route(key) for key in keys}
        router.mark_dead(2)
        moved = 0
        for key in keys:
            after = router.route(key)
            if before[key] == 2:
                moved += 1
                assert after != 2
            else:
                assert after == before[key], "a surviving shard's key moved"
        assert moved == sum(1 for w in before.values() if w == 2)
        # and the orphaned keys spread over all survivors, not one
        orphan_homes = {router.route(k) for k in keys if before[k] == 2}
        assert orphan_homes == {0, 1, 3}

    def test_revival_restores_the_original_map(self):
        keys = [instance_hash(q) for q in synthetic_instances(500)]
        router = ShardRouter(range(3))
        before = {key: router.route(key) for key in keys}
        router.mark_dead(1)
        router.mark_alive(1)
        assert {key: router.route(key) for key in keys} == before

    def test_route_is_pure_across_router_instances(self):
        keys = [instance_hash(q) for q in synthetic_instances(200)]
        a, b = ShardRouter(range(5)), ShardRouter(range(5))
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]
