"""Worker crashes: rerouting without corrupting answers, cache, or registry.

A SIGKILLed worker takes its process, event loop and ranking cache with
it.  The cluster's obligations: requests that were inflight on the dead
worker are re-executed elsewhere (ranking is pure, so that is safe), its
shard reroutes deterministically, surviving workers' caches keep serving
bit-identical answers, and the shared on-disk registry is untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.routing import ShardRouter
from repro.stencil.execution import instance_hash
from tests.cluster.harness import (
    assert_response_matches,
    expected_answer,
    kill_and_settle,
    wait_until,
    workload_requests,
)


class TestCrashRerouting:
    def test_inflight_requests_survive_a_kill(self, make_cluster, cluster_tuner):
        """Kill a worker with a burst inflight: every request still gets a
        bit-identical answer (requeued ones on another shard)."""
        requests = workload_requests(60, seed=53)
        cluster = make_cluster(n_workers=3, restart_workers=False)
        futures = [cluster.submit(q, c) for q, c in requests]
        cluster.kill_worker(1)
        responses = [f.result(timeout=120) for f in futures]
        for (instance, candidates), response in zip(requests, responses):
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
        assert cluster.crashes == 1
        requeued = [r for r in responses if r.attempts > 1]
        routed_to_dead = [
            (q, c)
            for q, c in requests
            if ShardRouter(range(3)).route(instance_hash(q)) == 1
        ]
        # everything that was answered despite targeting the dead shard
        # either beat the kill or was requeued; nothing may be lost
        assert len(responses) == len(requests)
        if routed_to_dead:
            survivors = {
                r.worker_id
                for q, _ in routed_to_dead
                for r in responses
                if r.worker_id != 1
            }
            assert survivors <= {0, 2}
        assert all(r.attempts <= 2 for r in requeued)

    def test_dead_shard_reroutes_deterministically(self, make_cluster):
        """After the kill, the dead worker's instances land exactly where
        rendezvous hashing over the surviving set says; other instances
        keep their original owner (minimal movement)."""
        requests = workload_requests(40, seed=59)
        cluster = make_cluster(n_workers=3, restart_workers=False)
        # settle baseline ownership first
        baseline = {}
        for instance, candidates in requests:
            r = cluster.submit(instance, candidates, include_scores=False).result(
                timeout=120
            )
            baseline[instance_hash(instance)] = r.worker_id
        kill_and_settle(cluster, 2)
        assert cluster.alive_workers() == (0, 1)
        survivor_router = ShardRouter([0, 1])
        for instance, candidates in requests:
            r = cluster.submit(instance, candidates, include_scores=False).result(
                timeout=120
            )
            key = instance_hash(instance)
            assert r.worker_id == survivor_router.route(key)
            if baseline[key] != 2:
                assert r.worker_id == baseline[key], (
                    "an instance not owned by the dead worker must not move"
                )

    def test_restart_returns_the_shard_to_its_owner(self, make_cluster, cluster_tuner):
        """With restart_workers=True the replacement rejoins routing, the
        original shard map is restored, and answers stay bit-identical
        (the replacement's cold cache re-encodes to the same bytes)."""
        requests = workload_requests(20, seed=61)
        cluster = make_cluster(n_workers=2, restart_workers=True)
        owners = {}
        for instance, candidates in requests:
            r = cluster.submit(instance, candidates, include_scores=False).result(
                timeout=120
            )
            owners[instance_hash(instance)] = r.worker_id
        kill_and_settle(cluster, 0)
        assert wait_until(lambda: cluster.alive_workers() == (0, 1), timeout_s=15.0)
        for instance, candidates in requests:
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert response.worker_id == owners[instance_hash(instance)]
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
        assert any(
            e["type"] == "worker-exit" and e["restarted"] for e in cluster.events
        )

    def test_registry_and_surviving_caches_are_unharmed(
        self, make_cluster, cluster_registry, cluster_tuner
    ):
        """A crash must not corrupt shared state: the registry still
        resolves and loads, and a surviving worker's cache still answers
        repeat instances (cached=True) with the oracle's bytes."""
        requests = workload_requests(12, seed=67)
        cluster = make_cluster(n_workers=2, restart_workers=False)
        for instance, candidates in requests:
            cluster.submit(instance, candidates, include_scores=False).result(
                timeout=120
            )
        victim = 0
        kill_and_settle(cluster, victim)
        assert cluster_registry.resolve("prod") == "v0001"
        assert cluster_registry.load("prod").is_fitted
        survivor = cluster.alive_workers()[0]
        for instance, candidates in requests:
            if ShardRouter(range(2)).route(instance_hash(instance)) != survivor:
                continue  # originally the victim's; its cache died with it
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert response.cached, "the survivor's cache must still be intact"
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)

    def test_all_workers_dead_fails_requests_cleanly(self, make_cluster):
        requests = workload_requests(1, seed=71)
        cluster = make_cluster(n_workers=1, restart_workers=False)
        kill_and_settle(cluster, 0)
        with pytest.raises(RuntimeError, match="no alive workers"):
            cluster.submit(requests[0][0], requests[0][1]).result(timeout=120)


class TestStressMixedFailure:
    def test_storm_with_kill_and_hot_swap(
        self, make_cluster, cluster_registry, cluster_tuner, second_model
    ):
        """The combined drill: 96 concurrent mixed requests, one worker
        killed and a promotion landing mid-storm.  Every answer must be
        bit-identical to one single version's oracle — crashes and swaps
        may change *who* and *which version* answers, never the bytes."""
        import dataclasses

        from repro.online.promotion import PromotionPolicy
        from repro.online.shadow import ShadowReport

        requests = workload_requests(96, seed=73)
        cluster = make_cluster(n_workers=3, restart_workers=True)
        futures = [cluster.submit(q, c) for q, c in requests[:48]]
        cluster.kill_worker(2)
        policy = PromotionPolicy(cluster_registry, tag="prod")
        report = ShadowReport(
            candidate_tau=0.9, production_tau=0.1, n_records=8,
            candidate_taus=(0.9,) * 8, production_taus=(0.1,) * 8,
            families=("line",) * 8,
        )
        decision = policy.consider(
            second_model, cluster_tuner.fingerprint(), report
        )
        assert decision.promoted
        futures += [cluster.submit(q, c) for q, c in requests[48:]]
        responses = [f.result(timeout=180) for f in futures]
        oracles = {
            "v0001": cluster_tuner,
            "v0002": dataclasses.replace(cluster_tuner, model=second_model),
        }
        for (instance, candidates), response in zip(requests, responses):
            oracle = oracles[response.model_version]
            ranked, scores = expected_answer(oracle, instance, candidates)
            assert response.ranked == ranked
            assert np.array_equal(response.scores, scores)
        assert cluster.crashes == 1
        stats = cluster.stats()
        assert stats["cluster"]["failed_total"] == 0
