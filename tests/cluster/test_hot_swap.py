"""Atomic hot swap across processes: a promotion lands everywhere, torn nowhere.

A promotion is one atomic ``tags.json`` replace; every worker re-resolves
its tag per micro-batch (two syscalls against the stat-cached registry).
Under inflight traffic that must mean: each answer is computed end-to-end
by exactly one version — old or new, never a half-swapped mixture — and
shortly after the tag move, every worker serves the new version.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.online.promotion import PromotionPolicy
from repro.online.shadow import ShadowReport
from tests.cluster.harness import expected_answer, wait_until, workload_requests


def _passing_report(n: int = 8) -> ShadowReport:
    """A shadow report that clears the promotion bar unconditionally."""
    return ShadowReport(
        candidate_tau=0.9,
        production_tau=0.1,
        n_records=n,
        candidate_taus=(0.9,) * n,
        production_taus=(0.1,) * n,
        families=("line",) * n,
    )


@pytest.fixture()
def oracle_pair(cluster_tuner, second_model):
    """(v0001 oracle, v0002 oracle) sharing the session encoder."""
    v2_tuner = dataclasses.replace(cluster_tuner, model=second_model)
    return {"v0001": cluster_tuner, "v0002": v2_tuner}


class TestHotSwap:
    def test_promotion_during_inflight_traffic_is_atomic_everywhere(
        self, make_cluster, cluster_registry, cluster_tuner, second_model, oracle_pair
    ):
        """Move the serving tag mid-stream: every response must be
        bit-identical to whichever single version stamped it — no answer
        may mix the two models — and the swap must reach all workers."""
        requests = workload_requests(60, seed=41)
        cluster = make_cluster(n_workers=3)
        # warm: half the stream inflight before the promotion
        futures = [cluster.submit(q, c) for q, c in requests[:30]]
        policy = PromotionPolicy(cluster_registry, tag="prod")
        decision = policy.consider(
            second_model, cluster_tuner.fingerprint(), _passing_report()
        )
        assert decision.promoted and decision.version == "v0002"
        futures += [cluster.submit(q, c) for q, c in requests[30:]]
        responses = [f.result(timeout=120) for f in futures]

        versions_seen = {r.model_version for r in responses}
        assert versions_seen <= {"v0001", "v0002"}
        assert "v0002" in versions_seen, "the promotion never reached serving"
        for (instance, candidates), response in zip(requests, responses):
            oracle = oracle_pair[response.model_version]
            ranked, scores = expected_answer(oracle, instance, candidates)
            assert response.ranked == ranked, (
                f"response stamped {response.model_version} does not match that "
                f"version's single-process ranking — a torn swap"
            )
            assert np.array_equal(response.scores, scores)

        # steady state: every worker now serves v0002 (tag re-resolution)
        def all_workers_on_v2() -> bool:
            checks = [
                cluster.submit(q, c, include_scores=False).result(timeout=120)
                for q, c in requests[:6]
            ]
            return {r.model_version for r in checks} == {"v0002"}

        assert wait_until(all_workers_on_v2, timeout_s=30.0)

    def test_pinned_version_requests_ignore_the_swap(
        self, make_cluster, cluster_registry, cluster_tuner, second_model, oracle_pair
    ):
        """Requests naming v0001 explicitly keep answering with v0001 bytes
        after the tag moves — versions are immutable, tags are not."""
        requests = workload_requests(6, seed=43)
        cluster = make_cluster(n_workers=2)
        policy = PromotionPolicy(cluster_registry, tag="prod")
        policy.consider(second_model, cluster_tuner.fingerprint(), _passing_report())
        for instance, candidates in requests:
            pinned = cluster.submit(instance, candidates, model="v0001").result(
                timeout=120
            )
            tagged = cluster.submit(instance, candidates).result(timeout=120)
            assert pinned.model_version == "v0001"
            assert tagged.model_version == "v0002"
            ranked_v1, _ = expected_answer(oracle_pair["v0001"], instance, candidates)
            ranked_v2, _ = expected_answer(oracle_pair["v0002"], instance, candidates)
            assert pinned.ranked == ranked_v1
            assert tagged.ranked == ranked_v2

    def test_rollback_propagates_like_a_promotion(
        self, make_cluster, cluster_registry, cluster_tuner, second_model
    ):
        """One-call rollback is just another atomic tag move: all workers
        return to the displaced version."""
        requests = workload_requests(6, seed=47)
        cluster = make_cluster(n_workers=2)
        policy = PromotionPolicy(cluster_registry, tag="prod")
        policy.consider(second_model, cluster_tuner.fingerprint(), _passing_report())

        def serving(version: str) -> bool:
            checks = [
                cluster.submit(q, c, include_scores=False).result(timeout=120)
                for q, c in requests
            ]
            return {r.model_version for r in checks} == {version}

        assert wait_until(lambda: serving("v0002"), timeout_s=30.0)
        assert policy.rollback() == "v0001"
        assert wait_until(lambda: serving("v0001"), timeout_s=30.0)
