"""Shared fixtures for the multi-process serving (cluster) suites.

The expensive things are session-scoped (one trained tuner); everything
process-shaped is per-test: a fresh registry root under ``tmp_path`` and a
cluster factory that guarantees worker processes are stopped even when an
assertion fails mid-test.
"""

from __future__ import annotations

import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.service.cluster import ServiceCluster
from repro.service.registry import ModelRegistry


@pytest.fixture(scope="session")
def cluster_tuner(tiny_training_set) -> OrdinalAutotuner:
    """The single-process oracle every cluster answer is compared against."""
    return OrdinalAutotuner(config=RankSVMConfig(seed=0)).train(tiny_training_set)


@pytest.fixture(scope="session")
def second_model(tiny_training_set) -> RankSVM:
    """A distinguishable second model (different C) for hot-swap tests."""
    return RankSVM(RankSVMConfig(C=0.05, seed=1)).fit(tiny_training_set.data)


@pytest.fixture()
def cluster_registry(tmp_path, cluster_tuner) -> ModelRegistry:
    """A fresh registry holding the trained model as v0001, tagged prod."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(
        cluster_tuner.model, cluster_tuner.fingerprint(), tags=("prod",), note="seed"
    )
    return registry


@pytest.fixture()
def make_cluster(cluster_registry):
    """Factory for started clusters that are always stopped at teardown."""
    started: list[ServiceCluster] = []

    def factory(**kwargs) -> ServiceCluster:
        kwargs.setdefault("n_workers", 2)
        kwargs.setdefault("default_model", "prod")
        cluster = ServiceCluster(cluster_registry.root, **kwargs)
        started.append(cluster)
        return cluster.start()

    yield factory
    for cluster in started:
        cluster.stop()
