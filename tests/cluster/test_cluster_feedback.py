"""Cluster-wide continual learning: feedback over the wire.

Three layers, bottom up:

* the **wire stream** — workers sample successful answers onto the pipe as
  ``FeedbackRecord``s; the parent rehydrates preset candidate sets from its
  own memo bit-identically and fans records out to listeners;
* the **collector** — a single coordinator-side
  :class:`~repro.online.feedback.ClusterFeedbackCollector` measures the
  same (instance, tunings, truth, τ) records a single-process collector
  would, for the identical episode;
* the **loop** — a 2-worker cluster under a
  :class:`~repro.online.workload.DriftingWorkload` feeds one pipeline that
  retrains and promotes through the shared registry, and every worker
  serves the promoted version afterward.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.budget import BudgetedMachine
from repro.machine.executor import SimulatedMachine
from repro.online import (
    ClusterFeedbackCollector,
    ContinualConfig,
    ContinualLearningPipeline,
    DriftMonitor,
    FeedbackCollector,
    IncrementalTrainer,
    PromotionPolicy,
    ShadowEvaluator,
    family_kernels,
)
from repro.online.workload import DriftingWorkload
from repro.service import ModelRegistry, ServiceCluster
from repro.stencil.execution import instance_hash
from repro.tuning.presets import preset_candidates

from tests.cluster.harness import workload_requests

PHASE1 = ("line", "laplacian")
PHASE2 = ("hypercube", "hyperplane")


@pytest.fixture(scope="module")
def phase1_corpus():
    """A deliberately partial offline corpus (drift will expose it)."""
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    return builder.build(630, kernels=family_kernels(PHASE1))


@pytest.fixture(scope="module")
def phase1_tuner(phase1_corpus) -> OrdinalAutotuner:
    return OrdinalAutotuner().train(phase1_corpus)


@pytest.fixture()
def phase1_registry(tmp_path, phase1_tuner) -> ModelRegistry:
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(
        phase1_tuner.model, phase1_tuner.fingerprint(), tags=("prod",), note="seed"
    )
    return registry


def _wire_collector(**kwargs) -> ClusterFeedbackCollector:
    kwargs.setdefault("probe_size", 8)
    kwargs.setdefault("probe_mode", "uniform")
    kwargs.setdefault("dedupe", False)
    return ClusterFeedbackCollector(
        BudgetedMachine(SimulatedMachine(seed=11), max_evaluations=8192), **kwargs
    )


# -- the wire stream -----------------------------------------------------------


def test_feedback_stream_ships_content(make_cluster, cluster_tuner):
    """Explicit sets arrive verbatim; records align with served scores."""
    cluster = make_cluster(n_workers=2, feedback_every=1)
    received: list = []
    cluster.add_feedback_listener(
        lambda instance, candidates, record: received.append(
            (instance, candidates, record)
        )
    )
    requests = workload_requests(6, seed=5, candidates_per_request=12)
    for q, cands in requests:
        cluster.submit(q, cands).result()
    assert cluster.feedback_received == len(requests)
    assert cluster.feedback_errors == 0
    assert len(received) == len(requests)
    by_key = {
        (instance_hash(i), np.asarray(r.scores).tobytes()): (i, c, r)
        for i, c, r in received
    }
    for q, cands in requests:
        expected = cluster_tuner.score_candidates(q, cands)
        key = (instance_hash(q), expected.tobytes())
        assert key in by_key, "record's scores are not bit-identical to the oracle"
        _, got_cands, record = by_key[key]
        assert list(got_cands) == list(cands)
        assert record.model_version == "v0001"


def test_preset_records_rehydrate_bit_identically(make_cluster, cluster_tuner):
    """candidates=None records grade against the exact preset list served."""
    cluster = make_cluster(n_workers=2, feedback_every=1)
    received: list = []
    cluster.add_feedback_listener(
        lambda instance, candidates, record: received.append((candidates, record))
    )
    instance = workload_requests(1, seed=9)[0][0]
    cluster.submit(instance, top_k=3, include_scores=False).result()
    assert len(received) == 1
    candidates, record = received[0]
    presets = preset_candidates(instance.dims)
    assert list(candidates) == presets
    assert np.array_equal(
        np.asarray(record.scores), cluster_tuner.score_candidates(instance, presets)
    )


def test_feedback_every_samples_the_stream(make_cluster):
    """feedback_every=2 streams every other answer (cache hits included)."""
    cluster = make_cluster(n_workers=2, feedback_every=2)
    q, cands = workload_requests(1, seed=13, candidates_per_request=8)[0]
    for _ in range(8):  # same instance: one worker, counted in arrival order
        cluster.submit(q, cands).result()
    assert cluster.feedback_received == 4


def test_raising_listener_never_breaks_serving(make_cluster):
    cluster = make_cluster(n_workers=2, feedback_every=1)

    def bad_listener(instance, candidates, record):
        raise RuntimeError("observer bug")

    cluster.add_feedback_listener(bad_listener)
    requests = workload_requests(4, seed=21, candidates_per_request=8)
    for q, cands in requests:
        assert cluster.submit(q, cands).result().ranked
    assert cluster.feedback_errors == len(requests)
    assert isinstance(cluster.last_feedback_error, RuntimeError)


def test_no_stream_without_feedback_every(make_cluster):
    """An unarmed cluster (default) streams nothing to its listeners."""
    cluster = make_cluster(n_workers=2)
    received: list = []
    cluster.add_feedback_listener(lambda *args: received.append(args))
    for q, cands in workload_requests(4, seed=2, candidates_per_request=8):
        cluster.submit(q, cands).result()
    assert cluster.feedback_received == 0
    assert received == []


# -- the collector -------------------------------------------------------------


def test_cluster_records_match_single_process(make_cluster, cluster_registry):
    """One wire-fed collector measures exactly what an in-process one would.

    Requests run one at a time on both sides so every fused pass holds
    exactly one request — scoring is then bit-identical between the two
    topologies and the records can be compared with ``array_equal``
    (stacking *different* micro-batches legitimately perturbs the last
    ulp of a score: BLAS reduction order depends on matrix height).
    """
    import asyncio

    from repro.service import TuningService

    requests = workload_requests(12, seed=17, candidates_per_request=10)

    cluster = make_cluster(n_workers=3, feedback_every=1)
    wire = _wire_collector().attach(cluster)
    for q, cands in requests:
        cluster.submit(q, cands).result()
    wire_records = wire.measure_pending()
    assert len(wire.records_by_worker) >= 2, "traffic never spread over shards"

    local = FeedbackCollector(
        BudgetedMachine(SimulatedMachine(seed=11), max_evaluations=8192),
        probe_size=8,
        probe_mode="uniform",
        dedupe=False,
    )

    async def serve() -> None:
        async with TuningService(cluster_registry, default_model="prod") as service:
            local.attach(service)
            for q, cands in requests:
                await service.rank(q, cands)
            local.detach(service)

    asyncio.run(serve())
    local_records = local.measure_pending()

    def keyed(records):
        return sorted(
            records,
            key=lambda fb: (instance_hash(fb.instance), fb.served_scores.tobytes()),
        )

    assert len(wire_records) == len(local_records) == len(requests)
    for got, want in zip(keyed(wire_records), keyed(local_records)):
        assert instance_hash(got.instance) == instance_hash(want.instance)
        assert got.tunings == want.tunings
        assert np.array_equal(got.served_scores, want.served_scores)
        assert np.array_equal(got.true_times, want.true_times)
        assert got.tau == want.tau
        assert got.family == want.family


# -- the loop ------------------------------------------------------------------


def test_cluster_continual_loop_end_to_end(phase1_registry, phase1_tuner, phase1_corpus):
    """Drifting traffic → wire-fed retrain+promotion served by every worker."""
    workload = DriftingWorkload(
        shift_at=24, phase1=PHASE1, phase2=PHASE2, seed=3, candidates_per_request=24
    )
    n_requests, wave = 96, 8
    with ServiceCluster(
        phase1_registry.root, n_workers=2, default_model="prod", feedback_every=1
    ) as cluster:
        collector = _wire_collector(probe_size=16)
        pipeline = ContinualLearningPipeline(
            service=cluster,
            collector=collector,
            monitor=DriftMonitor(
                phase1_tuner.encoder, window=48, tau_threshold=0.45, shift_threshold=1.2
            ).fit_reference(phase1_corpus),
            trainer=IncrementalTrainer(
                phase1_corpus, phase1_tuner.encoder, max_feedback=128
            ),
            evaluator=ShadowEvaluator(phase1_tuner.encoder),
            policy=PromotionPolicy(phase1_registry, tag="prod", min_records=4),
            config=ContinualConfig(measure_per_step=10, min_feedback_to_train=16),
        ).attach()
        for start in range(0, n_requests, wave):
            futures = [
                cluster.submit(*workload.request(i)) for i in range(start, start + wave)
            ]
            for future in futures:
                future.result()
            pipeline.step()

        assert pipeline.retrain_count >= 1, pipeline.events
        assert pipeline.promotion_count >= 1, pipeline.events
        assert cluster.feedback_received >= n_requests
        assert len(collector.records_by_worker) == 2, collector.records_by_worker

        # every worker serves the promoted version for fresh traffic
        promoted = phase1_registry.resolve("prod")
        assert promoted != "v0001"
        versions_by_worker: dict[int, str] = {}
        probe_i = n_requests
        while (
            set(cluster.alive_workers()) - set(versions_by_worker)
            and probe_i < n_requests + 64
        ):
            reply = cluster.submit(*workload.request(probe_i)).result()
            versions_by_worker.setdefault(reply.worker_id, reply.model_version)
            probe_i += 1
        assert set(versions_by_worker) == set(cluster.alive_workers())
        assert all(v == promoted for v in versions_by_worker.values()), (
            versions_by_worker
        )
        # the displaced offline model stays one rollback away
        assert phase1_registry.resolve("prod-rollback") == "v0001"
        pipeline.detach()
