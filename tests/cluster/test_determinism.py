"""Cross-process determinism: cluster answers ≡ single-process rankings.

The cluster is only trustworthy if distributing the service across
processes changes *nothing* about the answers: every ranking and every
score must be bit-identical to ``OrdinalAutotuner.rank_candidates`` in
this process, regardless of which worker answered, how requests were
batched, or whether the cache served them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.cache import intern_candidates
from repro.stencil.execution import instance_hash
from repro.tuning.presets import preset_candidates
from tests.cluster.harness import (
    assert_response_matches,
    expected_answer,
    workload_requests,
)


class TestBitIdentity:
    def test_mixed_stream_across_two_workers(self, make_cluster, cluster_tuner):
        """48 deterministic drifting-workload requests, 2 worker processes:
        every ranking and every score array equals the in-process oracle."""
        requests = workload_requests(48, seed=3)
        cluster = make_cluster(n_workers=2)
        futures = [cluster.submit(q, cands) for q, cands in requests]
        responses = [f.result(timeout=120) for f in futures]
        used_workers = set()
        for (instance, candidates), response in zip(requests, responses):
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
            assert response.model_version == "v0001"
            used_workers.add(response.worker_id)
        assert used_workers == {0, 1}, "the stream should exercise both shards"

    def test_preset_requests_regenerated_worker_side(self, make_cluster, cluster_tuner):
        """candidates=None ships no candidate payload; the worker's preset
        set must reproduce the oracle's preset ranking exactly."""
        requests = workload_requests(4, seed=5)
        cluster = make_cluster(n_workers=2)
        for instance, _ in requests:
            response = cluster.submit(instance).result(timeout=120)
            presets = preset_candidates(instance.dims)
            ranked, scores = expected_answer(cluster_tuner, instance, presets)
            assert_response_matches(response, ranked, scores)

    def test_interned_digest_survives_the_wire(self, make_cluster, cluster_tuner):
        """A parent-side interned set is recognized by the worker: repeat
        requests hit the worker cache (same content digest across the
        process boundary) and still match the oracle."""
        requests = workload_requests(1, seed=7)
        instance, candidates = requests[0]
        shared = intern_candidates(candidates)
        cluster = make_cluster(n_workers=2)
        first = cluster.submit(instance, shared).result(timeout=120)
        second = cluster.submit(instance, shared).result(timeout=120)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert_response_matches(first, ranked, scores)
        assert_response_matches(second, ranked, scores)
        assert second.cached, "identical interned request must hit the worker cache"
        assert second.worker_id == first.worker_id, "affinity keeps the cache hot"

    def test_top_k_is_a_prefix_of_the_full_ranking(self, make_cluster, cluster_tuner):
        requests = workload_requests(6, seed=11)
        cluster = make_cluster(n_workers=2)
        for instance, candidates in requests:
            response = cluster.submit(instance, candidates, top_k=5).result(timeout=120)
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores, top_k=5)
            assert len(response.ranked) == 5

    def test_include_scores_false_omits_the_array_only(
        self, make_cluster, cluster_tuner
    ):
        requests = workload_requests(1, seed=13)
        instance, candidates = requests[0]
        cluster = make_cluster(n_workers=2)
        response = cluster.submit(
            instance, candidates, top_k=3, include_scores=False
        ).result(timeout=120)
        assert response.scores is None
        ranked, _ = expected_answer(cluster_tuner, instance, candidates)
        assert response.ranked == ranked[:3]


class TestAffinityAndConsistency:
    def test_instance_affinity_is_stable_and_router_predicted(self, make_cluster):
        """Every repeat of an instance is answered by the worker the shared
        rendezvous router names — the property that keeps per-worker
        caches hot and shard-local."""
        requests = workload_requests(30, seed=17)
        cluster = make_cluster(n_workers=3)
        owner_seen: dict[int, int] = {}
        for instance, candidates in requests:
            response = cluster.submit(instance, candidates).result(timeout=120)
            key = instance_hash(instance)
            assert response.worker_id == cluster.router.route(key)
            assert owner_seen.setdefault(key, response.worker_id) == response.worker_id
        assert len(set(owner_seen.values())) > 1

    def test_same_episode_twice_yields_identical_bytes(self, make_cluster):
        """Replaying the identical request stream against a fresh cluster
        reproduces every ranking and score byte-for-byte — the determinism
        discipline that makes cross-run comparisons meaningful."""
        requests = workload_requests(16, seed=19)
        first = make_cluster(n_workers=2)
        a = [first.submit(q, c).result(timeout=120) for q, c in requests]
        first.stop()
        second = make_cluster(n_workers=2)
        b = [second.submit(q, c).result(timeout=120) for q, c in requests]
        for ra, rb in zip(a, b):
            assert ra.ranked == rb.ranked
            assert np.array_equal(ra.scores, rb.scores)
            assert ra.worker_id == rb.worker_id  # routing is deterministic too


class TestErrorsAndLifecycle:
    def test_unknown_model_ref_fails_only_that_request(self, make_cluster):
        requests = workload_requests(2, seed=23)
        cluster = make_cluster(n_workers=2)
        (q1, c1), (q2, c2) = requests
        bad = cluster.submit(q1, c1, model="no-such-tag")
        good = cluster.submit(q2, c2)
        with pytest.raises(KeyError, match="no-such-tag"):
            bad.result(timeout=120)
        assert good.result(timeout=120).model_version == "v0001"
        assert cluster.crashes == 0, "a bad request must not look like a crash"

    def test_submit_after_stop_raises(self, make_cluster):
        requests = workload_requests(1, seed=29)
        cluster = make_cluster(n_workers=2)
        cluster.stop()
        with pytest.raises(RuntimeError, match="not running"):
            cluster.submit(requests[0][0], requests[0][1])

    def test_stop_drains_inflight_requests(self, make_cluster, cluster_tuner):
        """Everything accepted before stop() is answered, never stranded."""
        requests = workload_requests(24, seed=31)
        cluster = make_cluster(n_workers=2)
        futures = [cluster.submit(q, c) for q, c in requests]
        cluster.stop()
        for (instance, candidates), future in zip(requests, futures):
            response = future.result(timeout=120)
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
