"""Registry concurrency across *processes*: gc vs tag-move vs reader vs publisher.

``tests/service/test_model_registry.py`` covers threaded contention inside
one interpreter; the cluster shares one registry root between genuinely
separate processes, where only the on-disk protocol (flock around
tags.json RMW and gc, exclusive-create claim files, atomic replaces)
provides the guarantees.  This drill runs four roles concurrently against
one root and then audits the invariants:

* a reader never observes torn state: tagged refs always resolve and load
  a fitted, fingerprint-valid model;
* tag moves and gc never leave a tag dangling at a deleted version;
* concurrent publishers never reuse or overwrite a version id;
* gc never deletes a protected (tagged or newest-N) version.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

_READER = """
import sys
from repro.service.registry import ModelRegistry

registry = ModelRegistry(sys.argv[1])
for _ in range(120):
    version = registry.resolve("prod")
    assert version.startswith("v"), version
    model = registry.load("prod")
    assert model.is_fitted
    registry.resolve("latest")
print("reader-ok")
"""

_TAGGER = """
import sys
from repro.service.registry import ModelRegistry

registry = ModelRegistry(sys.argv[1])
moved = 0
for i in range(150):
    versions = registry.versions()
    # both tags race gc for their targets: the versions() snapshot is
    # taken outside the lock, so a concurrent publisher can shift the
    # keep_last protection window and gc can delete the chosen target
    # before tag()'s locked resolve.  Losing the race must surface as a
    # clean KeyError (the guarantee is no torn state, not target
    # persistence) — and tag() resolving under the lock is what keeps
    # every *successful* move pointing at a live version.
    for name, target in (("prod", versions[-1 - (i % 3)]), ("pin", versions[i % len(versions)])):
        try:
            registry.tag(name, target)
            moved += 1
        except KeyError:
            pass
assert moved > 0, "every single tag move lost its race — setup is broken"
print("tagger-ok")
"""

_GC = """
import sys
from repro.service.registry import ModelRegistry

registry = ModelRegistry(sys.argv[1])
for _ in range(80):
    victims = registry.gc(keep_last=3)
    for victim in victims:
        assert victim not in registry.tags().values()
print("gc-ok")
"""

_PUBLISHER = """
import sys
from repro.service.registry import ModelRegistry

registry = ModelRegistry(sys.argv[1])
# load whatever the serving tag points at: a pinned version id could be
# legitimately garbage-collected mid-race, a *tagged* ref cannot stay
# gone — consecutive attempts must land within a couple of re-resolutions
for attempt in range(10):
    try:
        model = registry.load("prod")
        break
    except KeyError:
        continue
else:
    raise AssertionError("the tagged ref never loaded in 10 attempts")
published = [
    registry.publish(model, sys.argv[2], note="race-publisher")
    for _ in range(12)
]
assert len(set(published)) == len(published)
print("published:" + ",".join(published))
"""


def _spawn(script: str, root: Path, *extra_args: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, str(root), *extra_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_gc_vs_tag_vs_reader_vs_publisher_across_processes(
    cluster_registry, cluster_tuner
):
    """The full four-way race, then a structural audit of the survivors."""
    for _ in range(5):  # history for gc and the tagger to fight over
        cluster_registry.publish(
            cluster_tuner.model, cluster_tuner.fingerprint(), note="seed-history"
        )
    root = cluster_registry.root
    fingerprint = cluster_tuner.fingerprint()
    procs = {
        name: _spawn(script, root, *args)
        for name, script, args in (
            ("reader", _READER, ()),
            ("tagger", _TAGGER, ()),
            ("gc", _GC, ()),
            ("publisher", _PUBLISHER, (fingerprint,)),
        )
    }
    outputs = {}
    for name, proc in procs.items():
        out, err = proc.communicate(timeout=180)
        assert proc.returncode == 0, f"{name} crashed:\n{err[-2000:]}"
        outputs[name] = out

    # every role ran to completion
    assert "reader-ok" in outputs["reader"]
    assert "tagger-ok" in outputs["tagger"]
    assert "gc-ok" in outputs["gc"]
    published = outputs["publisher"].split("published:")[1].strip().split(",")

    # --- structural audit ----------------------------------------------------
    versions = cluster_registry.versions()
    assert versions == sorted(set(versions)), "version listing corrupt"
    # ids are never reused: the publisher's 12 fresh ids are all above the
    # 6 seeds, distinct, and any gc'd id stays gone from the listing
    assert len(set(published)) == 12
    assert all(int(v[1:]) > 6 for v in published)
    # no claim files or temp files survive the storm
    leftovers = list(root.rglob("*.tmp")) + list(root.rglob("*.claim"))
    assert leftovers == []
    # every surviving version is loadable and internally consistent
    for version in versions:
        meta = json.loads((cluster_registry.models_dir / f"{version}.json").read_text())
        assert meta["version"] == version
        assert cluster_registry.load(version).is_fitted
    # every tag points at a live version (no dangling tags)
    for tag, target in cluster_registry.tags().items():
        assert target in versions, f"tag {tag!r} dangles at deleted {target!r}"
    # gc protection held: the serving tag still resolves and loads
    assert cluster_registry.load("prod").is_fitted


def test_cached_tags_see_other_processes_moves(cluster_registry):
    """The content-cached tag reader must observe a move made by a
    *different* process immediately — the cluster's hot-swap poll."""
    script = """
import sys
from repro.service.registry import ModelRegistry
ModelRegistry(sys.argv[1]).tag("prod", "v0001")
ModelRegistry(sys.argv[1]).tag("external", "v0001")
"""
    assert cluster_registry.resolve("prod") == "v0001"  # warm the cache
    proc = _spawn(script, cluster_registry.root)
    _, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    assert cluster_registry.tags().get("external") == "v0001", (
        "content cache served a stale tag map"
    )
