"""Property suite for weighted rendezvous routing.

The heterogeneous-fleet contract: a worker's shard share is proportional
to its capacity weight (a weight-2 host takes 2×±15% a weight-1 host's
shards — the acceptance criterion), changing one worker's weight moves
only keys into or out of *that* worker, weight 0 drains a worker without
killing it, and uniform weights are bit-compatible with the classic
unweighted election every older routing test pins.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.service.routing import ShardRouter
from repro.util.rng import hash_seed

from tests.cluster.test_hash_properties import synthetic_instances
from repro.stencil.execution import instance_hash


def routing_keys(n: int, salt: str = "weighted-routing") -> list[int]:
    """``n`` deterministic, uniform 64-bit keys (fast stand-ins for
    instance hashes; the 10k-instance test uses real ones)."""
    return [hash_seed(salt, i) for i in range(n)]


class TestProportionalShare:
    def test_weight_2_worker_takes_2x_within_15pct_over_10k_instances(self):
        """The acceptance criterion, on real instance fingerprints."""
        keys = [instance_hash(q) for q in synthetic_instances(10_000)]
        router = ShardRouter(range(3), weights={0: 2.0})
        counts = Counter(router.route(k) for k in keys)
        light_mean = (counts[1] + counts[2]) / 2
        ratio = counts[0] / light_mean
        assert 2.0 * 0.85 <= ratio <= 2.0 * 1.15, (
            f"weight-2 worker took {ratio:.2f}x a weight-1 worker's shards"
        )

    def test_share_tracks_weight_across_a_spread(self):
        keys = routing_keys(30_000)
        weights = {0: 1.0, 1: 2.0, 2: 4.0, 3: 0.5}
        router = ShardRouter(range(4), weights=weights)
        counts = Counter(router.route(k) for k in keys)
        total_weight = sum(weights.values())
        for worker, weight in weights.items():
            expected = len(keys) * weight / total_weight
            assert counts[worker] == pytest.approx(expected, rel=0.15), (
                f"worker {worker} (weight {weight}) owns {counts[worker]}, "
                f"expected ~{expected:.0f}"
            )

    def test_uniform_weights_match_the_unweighted_election_exactly(self):
        """Bit-compatibility: the default fleet must route identically to
        the pre-weighted router, or every pinned affinity test lies."""
        keys = routing_keys(5_000)
        weighted = ShardRouter(range(4), weights={w: 3.5 for w in range(4)})
        classic = ShardRouter(range(4))
        assert [weighted.route(k) for k in keys] == [
            classic.route(k) for k in keys
        ]


class TestMinimalMovement:
    def test_one_weight_change_moves_keys_only_into_that_worker(self):
        keys = routing_keys(5_000)
        router = ShardRouter(range(4))
        before = {k: router.route(k) for k in keys}
        router.set_weight(2, 3.0)  # worker 2 grew
        moved = 0
        for k in keys:
            after = router.route(k)
            if after != before[k]:
                moved += 1
                assert after == 2, (
                    "raising worker 2's weight moved a key between two "
                    "other workers"
                )
        assert moved > 0  # the weight change did take effect

    def test_lowering_a_weight_moves_keys_only_out_of_that_worker(self):
        keys = routing_keys(5_000)
        router = ShardRouter(range(4), weights={1: 4.0})
        before = {k: router.route(k) for k in keys}
        router.set_weight(1, 1.0)
        for k in keys:
            after = router.route(k)
            if after != before[k]:
                assert before[k] == 1, (
                    "shrinking worker 1 moved a key it never owned"
                )

    def test_untouched_workers_keep_every_key(self):
        keys = routing_keys(5_000)
        router = ShardRouter(range(5), weights={0: 2.0, 3: 0.5})
        owned_by_4 = {k for k in keys if router.route(k) == 4}
        router.set_weight(0, 5.0)
        router.set_weight(3, 2.0)
        still_4 = {k for k in keys if router.route(k) == 4}
        assert still_4 <= owned_by_4, (
            "a worker whose weight never changed gained keys it did not own"
        )


class TestDraining:
    def test_weight_zero_takes_no_new_shards_but_stays_alive(self):
        keys = routing_keys(3_000)
        router = ShardRouter(range(4))
        router.set_weight(1, 0.0)
        assert 1 in router.alive()  # draining, not dead
        assert all(router.route(k) != 1 for k in keys)

    def test_draining_routes_like_death_for_the_other_workers(self):
        """Draining a worker and killing it must orphan the same keys to
        the same survivors — weight 0 is a graceful mark_dead."""
        keys = routing_keys(3_000)
        drained = ShardRouter(range(4))
        drained.set_weight(2, 0.0)
        dead = ShardRouter(range(4))
        dead.mark_dead(2)
        assert [drained.route(k) for k in keys] == [dead.route(k) for k in keys]

    def test_restoring_a_drained_weight_restores_the_original_map(self):
        keys = routing_keys(1_000)
        router = ShardRouter(range(3))
        before = {k: router.route(k) for k in keys}
        router.set_weight(0, 0.0)
        router.set_weight(0, 1.0)
        assert {k: router.route(k) for k in keys} == before

    def test_all_drained_still_serves(self):
        """Serving beats draining: a fleet where every worker is draining
        keeps answering (uniform-weight fallback election)."""
        router = ShardRouter(range(3))
        for w in range(3):
            router.set_weight(w, 0.0)
        classic = ShardRouter(range(3))
        keys = routing_keys(500)
        assert [router.route(k) for k in keys] == [
            classic.route(k) for k in keys
        ]


class TestWeightValidation:
    def test_unknown_worker_id_is_a_key_error(self):
        router = ShardRouter(range(2))
        with pytest.raises(KeyError):
            router.set_weight(7, 2.0)

    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_invalid_weights_are_rejected(self, bad):
        router = ShardRouter(range(2))
        with pytest.raises(ValueError):
            router.set_weight(0, bad)

    def test_weights_property_is_a_defensive_copy(self):
        router = ShardRouter(range(2), weights={1: 2.0})
        snapshot = router.weights
        snapshot[1] = 99.0
        assert router.weight_of(1) == 2.0

    def test_revived_unknown_worker_defaults_to_weight_1(self):
        router = ShardRouter(range(2), weights={0: 2.0})
        router.mark_alive(5)
        assert router.weight_of(5) == 1.0
        assert 5 in router.worker_ids
