"""Aggregated cluster telemetry: merged counters, honest rates, pooled quantiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.telemetry import ServiceTelemetry, merge_stats
from tests.cluster.harness import workload_requests


class TestMergeStats:
    def test_counters_sum_and_rates_recompute(self):
        a = {
            "requests_total": 30, "completed_total": 28, "failed_total": 2,
            "batches_total": 10, "mean_batch_size": 3.0, "max_batch_size": 7,
            "scored_candidates_total": 500, "cache_entries": 4,
            "cache_hits": 20, "cache_misses": 10, "cache_evictions": 1,
        }
        b = {
            "requests_total": 10, "completed_total": 10, "failed_total": 0,
            "batches_total": 10, "mean_batch_size": 1.0, "max_batch_size": 2,
            "scored_candidates_total": 100, "cache_entries": 2,
            "cache_hits": 0, "cache_misses": 10, "cache_evictions": 0,
        }
        merged = merge_stats([a, b])
        assert merged["workers"] == 2
        assert merged["requests_total"] == 40
        assert merged["failed_total"] == 2
        assert merged["max_batch_size"] == 7
        # 30 + 10 batched requests over 20 batches, not mean-of-means (2.0)
        assert merged["mean_batch_size"] == pytest.approx(2.0)
        # 20 hits over 40 lookups — a lookup-weighted rate, not the 0.33
        # that averaging each worker's rate would report
        assert merged["cache_hit_rate"] == pytest.approx(0.5)
        assert merged["cache_evictions"] == 1

    def test_pooled_percentiles_not_percentiles_of_percentiles(self):
        fast = [0.001] * 99
        slow = [0.1]
        merged = merge_stats(
            [{"batches_total": 0}, {"batches_total": 0}], [fast, slow]
        )
        pooled = np.percentile(np.array(fast + slow), 99) * 1e3
        assert merged["latency_p99_ms"] == pytest.approx(pooled)
        assert merged["latency_p50_ms"] == pytest.approx(1.0)

    def test_empty_inputs(self):
        merged = merge_stats([])
        assert merged["workers"] == 0
        assert merged["requests_total"] == 0
        assert merged["cache_hit_rate"] == 0.0
        assert merged["latency_p99_ms"] == 0.0

    def test_window_round_trips_the_deque(self):
        telemetry = ServiceTelemetry(latency_window=3)
        for latency in (0.1, 0.2, 0.3, 0.4):
            telemetry.record_completion(latency)
        assert telemetry.window() == (0.2, 0.3, 0.4)


class TestClusterStats:
    def test_cluster_totals_match_traffic(self, make_cluster):
        # 16 distinct queries, each submitted twice: the repeat must be a
        # per-worker cache hit (same instance, same candidate set)
        requests = workload_requests(16, seed=79) * 2
        cluster = make_cluster(n_workers=2)
        for instance, candidates in requests:
            cluster.submit(instance, candidates, include_scores=False).result(
                timeout=120
            )
        stats = cluster.stats()
        merged, per_worker = stats["cluster"], stats["workers"]
        assert merged["workers"] == 2
        assert set(per_worker) == {0, 1}
        assert merged["requests_total"] == 32
        assert merged["completed_total"] == 32
        assert merged["failed_total"] == 0
        assert merged["requests_total"] == sum(
            w["requests_total"] for w in per_worker.values()
        )
        # repeats in the drifting stream must hit per-worker caches
        assert merged["cache_hits"] > 0
        assert merged["latency_p99_ms"] >= merged["latency_p50_ms"] > 0.0
        assert stats["alive_workers"] == [0, 1]
        assert stats["crashes"] == 0
