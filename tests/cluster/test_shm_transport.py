"""Zero-copy score transport, float32 serving and the encode cache, end to end.

The shm transport must be invisible at the answer layer: scores arriving
through a slab ring are bit-identical to the pickle path and to the
single-process oracle, slots are returned when responses are consumed,
and a run full of SIGKILLs leaves nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.online.promotion import PromotionPolicy
from repro.online.shadow import ShadowReport
from repro.service.shm import leaked_segments
from tests.cluster.harness import (
    assert_response_matches,
    expected_answer,
    kill_and_settle,
    wait_until,
    workload_requests,
)

_SHM_PREFIX = f"rsl-{os.getpid()}-"

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no visible /dev/shm on this platform"
)


class TestShmTransport:
    def test_slab_scores_bit_identical_to_oracle(self, make_cluster, cluster_tuner):
        requests = workload_requests(20, seed=71)
        cluster = make_cluster(n_workers=2)
        for instance, candidates in requests:
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert_response_matches(response, ranked, scores)
            response.release()
        stats = cluster.stats()["cluster"]
        assert stats["slab_writes_total"] > 0, "no reply ever used the slab ring"

    def test_release_after_consume_returns_slots(self, make_cluster):
        requests = workload_requests(12, seed=72)
        cluster = make_cluster(n_workers=2)
        responses = [
            cluster.submit(q, c).result(timeout=120) for q, c in requests
        ]
        held = sum(ring.in_use() for ring in cluster._worker_ring.values())
        slabbed = [r for r in responses if r.slab_lease is not None]
        assert held == len(slabbed), "slot refcounts diverged from live leases"
        for response in responses:
            response.release()
        assert sum(ring.in_use() for ring in cluster._worker_ring.values()) == 0

    def test_pickle_transport_stays_bit_identical(self, make_cluster, cluster_tuner):
        requests = workload_requests(12, seed=73)
        cluster = make_cluster(n_workers=2, score_transport="pickle")
        assert not cluster._worker_ring  # no rings created at all
        for instance, candidates in requests:
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert response.slab_lease is None
            assert_response_matches(response, ranked, scores)
        assert cluster.stats()["cluster"]["slab_writes_total"] == 0

    def test_dropped_responses_release_via_gc(self, make_cluster):
        """A caller that never calls release() only borrows slots until the
        collector runs — ring occupancy must not decay permanently."""
        import gc

        requests = workload_requests(8, seed=74)
        cluster = make_cluster(n_workers=1)
        for instance, candidates in requests:
            cluster.submit(instance, candidates).result(timeout=120)  # dropped
        gc.collect()
        assert sum(ring.in_use() for ring in cluster._worker_ring.values()) == 0

    @needs_dev_shm
    def test_stop_unlinks_all_segments(self, make_cluster):
        requests = workload_requests(8, seed=75)
        cluster = make_cluster(n_workers=2)
        for instance, candidates in requests:
            cluster.submit(instance, candidates).result(timeout=120)
        assert leaked_segments(_SHM_PREFIX)  # rings exist while running
        cluster.stop()
        assert leaked_segments(_SHM_PREFIX) == []

    @needs_dev_shm
    def test_sigkill_mid_stream_leaks_no_segments(self, make_cluster, cluster_tuner):
        """SIGKILL a worker with replies inflight: the replacement gets a
        fresh ring and stop() leaves /dev/shm empty."""
        requests = workload_requests(30, seed=76)
        cluster = make_cluster(n_workers=2)
        futures = [cluster.submit(q, c) for q, c in requests[:15]]
        kill_and_settle(cluster, 0)
        futures += [cluster.submit(q, c) for q, c in requests[15:]]
        for (instance, candidates), future in zip(requests, futures):
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(future.result(timeout=120), ranked, scores)
        cluster.stop()
        assert leaked_segments(_SHM_PREFIX) == []


def _passing_report(n: int = 8) -> ShadowReport:
    return ShadowReport(
        candidate_tau=0.9,
        production_tau=0.1,
        n_records=n,
        candidate_taus=(0.9,) * n,
        production_taus=(0.1,) * n,
        families=("line",) * n,
    )


class TestEncodeCache:
    def test_hot_swap_rescoring_hits_encode_cache(
        self, make_cluster, cluster_registry, cluster_tuner, second_model
    ):
        """Re-scoring known instances under a freshly promoted model must
        reuse their encodings: the ranking cache misses (new version) but
        the encode cache, keyed by instance alone, hits — bit-identically."""
        requests = workload_requests(10, seed=81)
        cluster = make_cluster(n_workers=2)
        for instance, candidates in requests:
            cluster.submit(instance, candidates).result(timeout=120)
        before = cluster.stats()["cluster"]

        policy = PromotionPolicy(cluster_registry, tag="prod")
        decision = policy.consider(
            second_model, cluster_tuner.fingerprint(), _passing_report()
        )
        assert decision.promoted

        v2_tuner = dataclasses.replace(cluster_tuner, model=second_model)

        def swap_reached_everywhere() -> bool:
            checks = [
                cluster.submit(q, c, include_scores=False).result(timeout=120)
                for q, c in requests[:4]
            ]
            return {r.model_version for r in checks} == {"v0002"}

        assert wait_until(swap_reached_everywhere, timeout_s=30.0)
        for instance, candidates in requests:
            ranked, scores = expected_answer(v2_tuner, instance, candidates)
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert response.model_version == "v0002"
            assert_response_matches(response, ranked, scores)

        # insertion is on second touch: the v1 pass recorded the encodes,
        # the v2 re-encode stored them — a *second* promotion is the first
        # one whose re-scoring can hit.  Republishing the original model
        # as v0003 doubles as a bit-identity check against the v1 oracle.
        cluster_registry.publish(
            cluster_tuner.model, cluster_tuner.fingerprint(), tags=("prod",)
        )

        def v3_reached_everywhere() -> bool:
            checks = [
                cluster.submit(q, c, include_scores=False).result(timeout=120)
                for q, c in requests[:4]
            ]
            return {r.model_version for r in checks} == {"v0003"}

        assert wait_until(v3_reached_everywhere, timeout_s=30.0)
        for instance, candidates in requests:
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert response.model_version == "v0003"
            assert_response_matches(response, ranked, scores)
        after = cluster.stats()["cluster"]
        assert after["encode_cache_hits"] > before["encode_cache_hits"], (
            "hot-swap re-scoring never reused a cached encoding"
        )

    def test_disabled_cache_reports_no_lookups(self, make_cluster):
        requests = workload_requests(6, seed=82)
        cluster = make_cluster(n_workers=1, encode_cache_rows=0)
        for instance, candidates in requests:
            cluster.submit(instance, candidates).result(timeout=120)
        stats = cluster.stats()["cluster"]
        assert stats["encode_cache_hits"] == 0
        assert stats["encode_cache_misses"] == 0


class TestFloat32Serving:
    def test_top_k_agreement_against_float64(self, make_cluster, cluster_tuner):
        """The opt-in float32 path must track the float64 ranking closely on
        the preset suite: identical top-1 and near-identical top-8 sets."""
        requests = workload_requests(16, seed=91)
        f64 = make_cluster(n_workers=1)
        f32 = make_cluster(n_workers=1, dtype="float32")
        overlaps = []
        top1_matches = 0
        for instance, candidates in requests:
            a = f64.submit(instance, candidates, top_k=8).result(timeout=120)
            b = f32.submit(instance, candidates, top_k=8).result(timeout=120)
            assert b.scores is not None and b.scores.dtype == np.float32
            assert np.allclose(
                np.asarray(b.scores, dtype=np.float64),
                np.asarray(a.scores, dtype=np.float64),
                rtol=1e-4,
                atol=1e-5,
            )
            set_a = {v.as_tuple() for v in a.ranked}
            set_b = {v.as_tuple() for v in b.ranked}
            overlaps.append(len(set_a & set_b) / max(len(set_a), 1))
            top1_matches += a.ranked[0] == b.ranked[0]
        assert float(np.mean(overlaps)) >= 0.9, overlaps
        assert top1_matches >= int(0.9 * len(requests))

    def test_float64_default_stays_bit_identical(self, make_cluster, cluster_tuner):
        """The bit-identity guarantee is pinned to the default dtype."""
        requests = workload_requests(6, seed=92)
        cluster = make_cluster(n_workers=1)
        for instance, candidates in requests:
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            response = cluster.submit(instance, candidates).result(timeout=120)
            assert response.scores.dtype == np.float64
            assert_response_matches(response, ranked, scores)
