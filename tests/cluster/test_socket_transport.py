"""Transport conformance: socket-served answers ≡ pipe-served answers.

The socket transport replaces ``multiprocessing.Pipe`` framing with the
length-prefixed codec over TCP — everything above the link (routing,
batching, scoring, health) is supposed to be transport-blind.  This suite
is the proof:

* a loopback-socket cluster's rankings and scores are **bit-identical**
  to the in-process oracle and to a pipe cluster serving the same
  deterministic workload — including a *mixed* fleet (one pipe worker,
  one socket worker);
* crash rerouting, restarts, heartbeats and chaos containment all behave
  over TCP exactly as over pipes;
* remote workers (a dialed :class:`~repro.service.remote.RemoteWorkerHost`)
  serve the same bytes, a failed dial degrades to a reported missing
  worker, and a severed remote link re-dials like a crashed local worker
  restarts;
* shm score transport degrades gracefully: socket workers ship scores on
  the wire (no slab lease), same answers.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.service.chaos import ChaosConfig
from repro.service.health import HealthState, ResilienceConfig
from repro.service.remote import RemoteWorkerHost
from repro.stencil.execution import instance_hash
from repro.tuning.presets import preset_candidates
from tests.cluster.harness import (
    assert_response_matches,
    expected_answer,
    wait_until,
    workload_requests,
)


def _drain(cluster, requests, **submit_kwargs):
    futures = [cluster.submit(q, c, **submit_kwargs) for q, c in requests]
    return [f.result(timeout=120) for f in futures]


class TestSocketConformance:
    def test_socket_cluster_matches_the_oracle(self, make_cluster, cluster_tuner):
        """24 mixed requests over loopback sockets: every ranking and every
        score array equals ``OrdinalAutotuner.rank_candidates`` exactly."""
        requests = workload_requests(24, seed=41)
        cluster = make_cluster(n_workers=2, transport="socket")
        responses = _drain(cluster, requests)
        used = set()
        for (instance, candidates), response in zip(requests, responses):
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
            used.add(response.worker_id)
        assert used == {0, 1}, "the stream should exercise both socket shards"

    def test_presets_and_top_k_over_sockets(self, make_cluster, cluster_tuner):
        requests = workload_requests(4, seed=43)
        cluster = make_cluster(n_workers=2, transport="socket")
        for instance, candidates in requests:
            preset_resp = cluster.submit(instance).result(timeout=120)
            ranked, scores = expected_answer(
                cluster_tuner, instance, preset_candidates(instance.dims)
            )
            assert_response_matches(preset_resp, ranked, scores)
            topk = cluster.submit(instance, candidates, top_k=5).result(timeout=120)
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(topk, ranked, scores, top_k=5)

    def test_pipe_socket_and_mixed_fleets_answer_identical_bytes(
        self, make_cluster
    ):
        """The cross-transport determinism pin: the same DriftingWorkload
        against pipe workers, socket workers, and a mixed fleet returns
        byte-identical rankings, scores and worker attribution — and each
        fleet's telemetry tells the same request story."""
        requests = workload_requests(24, seed=47)
        fleets = {
            "pipe": make_cluster(n_workers=2, transport="pipe"),
            "socket": make_cluster(n_workers=2, transport="socket"),
            "mixed": make_cluster(n_workers=2, transport={1: "socket"}),
        }
        answers = {name: _drain(c, requests) for name, c in fleets.items()}
        baseline = answers["pipe"]
        for name in ("socket", "mixed"):
            for ref, got in zip(baseline, answers[name]):
                assert got.ranked == ref.ranked
                assert np.array_equal(got.scores, ref.scores)
                assert got.model_version == ref.model_version
                # equal-weight routing is transport-independent, so the
                # same worker id answers on every fleet
                assert got.worker_id == ref.worker_id
        for name, cluster in fleets.items():
            stats = cluster.stats()
            assert stats["cluster"]["requests_total"] == len(requests), name
            assert stats["cluster"]["missing_workers"] == 0, name
            assert stats["missing_workers"] == [], name
            assert stats["cluster"]["corrupted_frames_total"] == 0, name


class TestSocketResilience:
    def test_heartbeats_flow_over_tcp(self, make_cluster):
        cluster = make_cluster(n_workers=2, transport="socket")
        assert wait_until(
            lambda: {0, 1} <= set(cluster._last_heard), timeout_s=15
        ), "socket workers never heartbeated"
        assert cluster.worker_health(0) is HealthState.HEALTHY
        assert cluster.worker_health(1) is HealthState.HEALTHY

    def test_socket_worker_crash_reroutes_and_restarts(
        self, make_cluster, cluster_tuner
    ):
        requests = workload_requests(12, seed=53)
        cluster = make_cluster(n_workers=2, transport="socket")
        _drain(cluster, requests[:4])
        victim = 0
        cluster.kill_worker(victim)
        wait_until(lambda: cluster.crashes >= 1, timeout_s=15)
        # a replacement dials back in and the fleet heals to full strength
        wait_until(lambda: set(cluster.alive_workers()) == {0, 1}, timeout_s=30)
        for instance, candidates in requests[4:]:
            response = cluster.submit(instance, candidates).result(timeout=120)
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)

    def test_corrupt_reply_over_socket_is_contained(
        self, make_cluster, cluster_tuner
    ):
        """A chaotic socket worker replaces one reply's payload with garbage
        bytes: the codec keeps framing (payload-level corruption), the
        coordinator counts one lost frame, and the request is recovered by
        its attempt timeout — never a poisoned stream, never a hang."""
        cluster = make_cluster(
            n_workers=1,
            transport="socket",
            restart_workers=False,
            chaos=ChaosConfig(corrupt_reply_every=1, burst_n=1),
            resilience=ResilienceConfig(
                attempt_timeout_s=0.4,
                max_retries=2,
                retry_backoff_s=0.02,
                monitor_interval_s=0.02,
                quarantine_after=10,
            ),
        )
        instance, candidates = workload_requests(1, seed=59)[0]
        response = cluster.submit(instance, candidates).result(timeout=60)
        ranked, scores = expected_answer(cluster_tuner, instance, candidates)
        assert_response_matches(response, ranked, scores)
        assert cluster.corrupted_frames >= 1
        assert cluster.frame_decode_bugs == 0
        assert cluster.crashes == 0, "frame corruption must never look like a crash"

    def test_shm_degrades_to_wire_scores_for_socket_workers(
        self, make_cluster, cluster_tuner
    ):
        """``score_transport='shm'`` on a socket fleet: no slab leases (the
        cross-host posture ships scores on the wire), same bytes."""
        requests = workload_requests(6, seed=61)
        cluster = make_cluster(
            n_workers=2, transport="socket", score_transport="shm"
        )
        for (instance, candidates), response in zip(
            requests, _drain(cluster, requests)
        ):
            assert response.slab_lease is None
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)


class TestRemoteWorkers:
    def test_remote_worker_serves_bit_identical_answers(
        self, make_cluster, cluster_registry, cluster_tuner
    ):
        """One local pipe worker + one worker behind a dialed
        RemoteWorkerHost: the fleet answers exactly like an all-local one,
        and the remote's stats merge into the cluster aggregate."""
        requests = workload_requests(16, seed=67)
        with RemoteWorkerHost(cluster_registry.root) as host:
            cluster = make_cluster(n_workers=1, remote_workers=[host.address])
            assert set(cluster.alive_workers()) == {0, 1}
            responses = _drain(cluster, requests)
            used = set()
            for (instance, candidates), response in zip(requests, responses):
                ranked, scores = expected_answer(
                    cluster_tuner, instance, candidates
                )
                assert_response_matches(response, ranked, scores)
                used.add(response.worker_id)
            assert 1 in used, "the remote shard never answered"
            stats = cluster.stats()
            assert stats["missing_workers"] == []
            assert stats["cluster"]["requests_total"] == len(requests)
            assert 1 in stats["workers"]
            assert host.workers_served == 1
            cluster.stop()

    def test_dial_failure_degrades_to_a_missing_worker(
        self, make_cluster, cluster_tuner
    ):
        """A dead remote address must cost the fleet one shard, not the
        cluster: serving continues locally and stats report the silent
        worker instead of raising."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here anymore
        requests = workload_requests(6, seed=71)
        cluster = make_cluster(
            n_workers=1, remote_workers=[f"127.0.0.1:{dead_port}"]
        )
        assert set(cluster.alive_workers()) == {0}
        for (instance, candidates), response in zip(
            requests, _drain(cluster, requests)
        ):
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)
            assert response.worker_id == 0
        stats = cluster.stats()
        assert stats["missing_workers"] == [1]
        assert stats["cluster"]["workers"] == 2  # the fleet size asked about
        assert stats["cluster"]["missing_workers"] == 1
        assert stats["cluster"]["requests_total"] == len(requests)
        assert any(e["type"] == "dial-failed" for e in cluster.events)

    def test_severed_remote_link_redials_and_readmits(
        self, make_cluster, cluster_registry, cluster_tuner
    ):
        requests = workload_requests(10, seed=73)
        with RemoteWorkerHost(cluster_registry.root) as host:
            cluster = make_cluster(n_workers=1, remote_workers=[host.address])
            _drain(cluster, requests[:4])
            cluster.kill_worker(1)  # severs the TCP link
            wait_until(lambda: cluster.crashes >= 1, timeout_s=15)
            wait_until(
                lambda: set(cluster.alive_workers()) == {0, 1}, timeout_s=30
            )
            assert host.workers_served == 2  # the re-dial was a fresh adoption
            for instance, candidates in requests[4:]:
                response = cluster.submit(instance, candidates).result(timeout=120)
                ranked, scores = expected_answer(
                    cluster_tuner, instance, candidates
                )
                assert_response_matches(response, ranked, scores)
            cluster.stop()


class TestWeightedFleet:
    def test_worker_weights_flow_into_the_router(self, make_cluster):
        cluster = make_cluster(n_workers=2, worker_weights={0: 2.0})
        assert cluster.router.weight_of(0) == 2.0
        assert cluster.router.weight_of(1) == 1.0

    def test_draining_a_worker_routes_new_instances_elsewhere(
        self, make_cluster, cluster_tuner
    ):
        requests = workload_requests(8, seed=79)
        cluster = make_cluster(n_workers=2, transport="socket")
        cluster.router.set_weight(1, 0.0)  # drain: alive, no new shards
        assert set(cluster.alive_workers()) == {0, 1}
        for (instance, candidates), response in zip(
            requests, _drain(cluster, requests)
        ):
            assert cluster.router.route(instance_hash(instance)) == 0
            assert response.worker_id == 0
            ranked, scores = expected_answer(cluster_tuner, instance, candidates)
            assert_response_matches(response, ranked, scores)

    def test_invalid_weight_config_fails_fast(self, cluster_registry):
        from repro.service.cluster import ServiceCluster

        with pytest.raises(KeyError):
            ServiceCluster(
                cluster_registry.root, n_workers=2, worker_weights={9: 1.0}
            )
        with pytest.raises(ValueError):
            ServiceCluster(
                cluster_registry.root, n_workers=2, worker_weights={0: -2.0}
            )
        with pytest.raises(ValueError):
            ServiceCluster(
                cluster_registry.root, n_workers=2, transport="carrier-pigeon"
            )
