"""End-to-end distributed tracing over a live multi-process cluster.

What these suites pin:

* traced requests produce a complete trace — a coordinator root span plus
  stage spans from both sides of the pipe, grouped by a trace id that is a
  pure function of the request id;
* the stage partition accounts for (nearly) all of each request's wall
  time — the attribution the benchmark's ``--trace`` mode reports is
  measured, not estimated;
* sampling is deterministic and honored over the wire: an unsampled
  request causes zero span traffic anywhere;
* tracing never changes an answer (bit-identical to the untraced oracle);
* the JSONL sink round-trips the merged span set.
"""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    ROOT_SPAN,
    TraceConfig,
    read_jsonl,
    sample_request,
    stage_breakdown,
    trace_id_for,
)
from tests.cluster.harness import (
    assert_response_matches,
    expected_answer,
    workload_requests,
)

pytestmark = pytest.mark.usefixtures("cluster_registry")


def test_traced_cluster_produces_complete_spans(make_cluster, cluster_tuner):
    cluster = make_cluster(n_workers=2, trace=TraceConfig(sample_rate=1.0))
    requests = workload_requests(24, seed=3)
    futures = [cluster.submit(inst, cands) for inst, cands in requests]
    for (inst, cands), fut in zip(requests, futures):
        ranked, scores = expected_answer(cluster_tuner, inst, cands)
        assert_response_matches(fut.result(timeout=30), ranked, scores)
    spans = cluster.trace_spans()
    roots = [s for s in spans if s.name == ROOT_SPAN]
    assert len(roots) == len(requests)
    by_trace: dict[str, set[str]] = {}
    processes: dict[str, set[str]] = {}
    for s in spans:
        if s.trace_id:
            by_trace.setdefault(s.trace_id, set()).add(s.name)
            processes.setdefault(s.trace_id, set()).add(s.process)
    assert len(by_trace) == len(requests)
    for trace_id, names in by_trace.items():
        # every trace has the coordinator stages and a worker-side story
        assert {"dispatch", "worker-ingress", "reply-egress", ROOT_SPAN} <= names
        assert "service-queue" in names
        assert ("encode" in names and "score" in names) or "cache" in names
        # spans were emitted from both sides of the pipe
        assert "coordinator" in processes[trace_id]
        assert any(p.startswith("worker-") for p in processes[trace_id])


def test_attribution_covers_wall_clock(make_cluster):
    cluster = make_cluster(n_workers=2, trace=TraceConfig(sample_rate=1.0))
    requests = workload_requests(32, seed=5)
    futures = [cluster.submit(inst, cands) for inst, cands in requests]
    for fut in futures:
        fut.result(timeout=30)
    report = stage_breakdown(cluster.trace_spans())
    assert report["n_traces"] == len(requests)
    # the acceptance bound: stages sum to >= 90% of per-request wall time
    assert report["coverage_mean"] >= 0.90, report
    fractions = {name: s["fraction"] for name, s in report["stages"].items()}
    assert abs(sum(fractions.values()) - report["coverage_mean"]) < 0.25


def test_trace_ids_deterministic_and_sampling_honored(make_cluster):
    rate = 0.5
    cluster = make_cluster(n_workers=2, trace=TraceConfig(sample_rate=rate))
    requests = workload_requests(32, seed=7)
    futures = [cluster.submit(inst, cands) for inst, cands in requests]
    for fut in futures:
        fut.result(timeout=30)
    # req_ids are issued sequentially from 1 in submission order
    expected_traced = {
        trace_id_for(i + 1)
        for i in range(len(requests))
        if sample_request(i + 1, rate)
    }
    assert 0 < len(expected_traced) < len(requests)
    seen = {s.trace_id for s in cluster.trace_spans() if s.trace_id}
    assert seen == expected_traced


def test_untraced_cluster_records_nothing(make_cluster):
    cluster = make_cluster(n_workers=2)
    for inst, cands in workload_requests(8, seed=9):
        cluster.submit(inst, cands).result(timeout=30)
    assert cluster.tracer is None
    assert cluster.trace_spans() == []


def test_jsonl_sink_round_trips(make_cluster, tmp_path):
    cluster = make_cluster(n_workers=2, trace=TraceConfig(sample_rate=1.0))
    for inst, cands in workload_requests(8, seed=11):
        cluster.submit(inst, cands).result(timeout=30)
    path = tmp_path / "trace.jsonl"
    written = cluster.dump_trace(path)
    spans = cluster.trace_spans()
    assert written == len(spans) > 0
    assert read_jsonl(path) == spans


def test_ring_buffer_bounds_span_memory(make_cluster):
    cluster = make_cluster(
        n_workers=2, trace=TraceConfig(sample_rate=1.0, ring_size=16)
    )
    for inst, cands in workload_requests(16, seed=13):
        cluster.submit(inst, cands).result(timeout=30)
    recorder = cluster.tracer.recorder
    assert len(recorder) <= 16
    assert recorder.recorded > 16
    assert recorder.dropped == recorder.recorded - len(recorder)
