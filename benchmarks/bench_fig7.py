"""Fig. 7 bench: Kendall-τ distribution versus training-set size."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_output
from repro.experiments.common import experiment_scale
from repro.experiments.fig7 import PAPER_SIZES, Fig7Config, format_fig7, run_fig7


def test_fig7_distribution(context, out_dir, benchmark):
    if experiment_scale() == "paper":
        sizes = PAPER_SIZES
    else:
        sizes = (640, 960, 1600, 2600)
    config = Fig7Config(sizes=sizes)

    result = benchmark.pedantic(
        run_fig7, args=(config, context), rounds=1, iterations=1
    )
    save_output(out_dir, "fig7", format_fig7(result, histograms=True))

    medians = [result.box_stats(s)["median"] for s in sizes]
    stds = [float(result.taus[s].std()) for s in sizes]
    # paper shape: "slightly improves on average, but consistently improves
    # in variance, therefore stabilizing the quality of the ranking".
    # The variance claim is the strong one; medians at tiny sizes are
    # degenerate (few points per group → τ quantized to {±1, ±1/3, ...}).
    assert stds[-1] < 0.5 * stds[0]
    assert all(b <= a + 0.02 for a, b in zip(stds, stds[1:]))
    # all medians clearly positive and the largest size stays high
    assert min(medians) > 0.2
    assert medians[-1] > 0.5
