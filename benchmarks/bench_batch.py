"""Micro-benchmarks of the batch measurement pipeline vs the scalar oracle.

Pins the perf claim the batch refactor exists for: noise-free true-time
evaluation of n tunings of one instance must be at least an order of
magnitude faster through ``true_times_batch`` than through a scalar
``sweep_cost`` loop, at training-corpus (n=100), population (n=1000) and
preset-ranking (n=8640) scales.

Run under pytest (with pytest-benchmark) for timing tables, or as a
script to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_batch.py   # writes BENCH_batch.json
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.machine.executor import SimulatedMachine
from repro.obs.ledger import append_row, ledger_row
from repro.stencil.execution import StencilExecution
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.tuning.space import patus_space

BENCH_SIZES = (100, 1000, 8640)
ARTIFACTS = Path(__file__).parent / "artifacts"
OUT_PATH = ARTIFACTS / "BENCH_batch.json"
HISTORY_PATH = Path(__file__).parent.parent / "BENCH_history.jsonl"


def _instance():
    return benchmark_by_id("laplacian-128x128x128")


def _tunings(n: int):
    """n candidate tunings: the 8640 preset, or a random sample of it."""
    cands = preset_candidates(3)
    if n >= len(cands):
        return cands
    return patus_space(3).random_vectors(n, rng=0)


def _scalar_loop(machine: SimulatedMachine, instance, tunings) -> np.ndarray:
    """The pre-batch evaluation path: one full model walk per tuning."""
    return np.array(
        [
            machine.cost_model.sweep_cost(StencilExecution(instance, t)).total_s
            for t in tunings
        ]
    )


@pytest.fixture(scope="module")
def instance():
    return _instance()


@pytest.mark.parametrize("n", BENCH_SIZES)
def test_true_times_batch(benchmark, instance, n):
    tunings = _tunings(n)

    def run():
        return SimulatedMachine().true_times_batch(instance, tunings)

    times = benchmark(run)
    assert times.shape == (n,)
    assert (times > 0).all()


@pytest.mark.parametrize("n", [100])
def test_scalar_loop_reference(benchmark, instance, n):
    tunings = _tunings(n)
    times = benchmark(lambda: _scalar_loop(SimulatedMachine(), instance, tunings))
    assert times.shape == (n,)


@pytest.mark.skipif(
    os.environ.get("CI", "").lower() == "true",
    reason="wall-clock speedup ratio is unreliable on shared CI runners",
)
def test_preset_speedup_at_least_10x(instance):
    """The acceptance bar: ≥10× on the 8640-candidate 3-D preset."""
    result = _bench_one(instance, 8640)
    assert result["speedup"] >= 10.0, f"batch speedup only {result['speedup']:.1f}x"
    np.testing.assert_allclose(
        result["_batch_times"], result["_scalar_times"], rtol=1e-12
    )


def test_preset_batch_matches_scalar(instance):
    """Equivalence half of the acceptance bar (timing-free, CI-safe)."""
    tunings = _tunings(8640)
    batch = SimulatedMachine().true_times_batch(instance, tunings)
    scalar = _scalar_loop(SimulatedMachine(), instance, tunings)
    np.testing.assert_allclose(batch, scalar, rtol=1e-12)


def _bench_one(instance, n: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall-clock for batch and scalar evaluation."""
    tunings = _tunings(n)
    batch_s, scalar_s = [], []
    batch_times = scalar_times = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch_times = SimulatedMachine().true_times_batch(instance, tunings)
        batch_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        scalar_times = _scalar_loop(SimulatedMachine(), instance, tunings)
        scalar_s.append(time.perf_counter() - t0)
    return {
        "n": n,
        "batch_s": min(batch_s),
        "scalar_s": min(scalar_s),
        "speedup": min(scalar_s) / min(batch_s),
        "per_eval_batch_us": min(batch_s) / n * 1e6,
        "per_eval_scalar_us": min(scalar_s) / n * 1e6,
        "_batch_times": batch_times,
        "_scalar_times": scalar_times,
    }


def main() -> None:
    """Record the batch-vs-scalar perf trajectory to BENCH_batch.json."""
    instance = _instance()
    rows = []
    for n in BENCH_SIZES:
        row = _bench_one(instance, n)
        max_rel = float(
            np.max(
                np.abs(row.pop("_batch_times") - row["_scalar_times"])
                / row.pop("_scalar_times")
            )
        )
        row["max_rel_err"] = max_rel
        rows.append(row)
        print(
            f"n={n:5d}  batch {row['batch_s'] * 1e3:8.2f} ms  "
            f"scalar {row['scalar_s'] * 1e3:8.2f} ms  "
            f"speedup {row['speedup']:6.1f}x  max rel err {max_rel:.2e}"
        )
    payload = {
        "benchmark": "true_times_batch vs scalar sweep_cost loop",
        "instance": instance.label(),
        "results": rows,
    }
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    headline = rows[-1]  # the 8640-candidate preset scale
    append_row(
        HISTORY_PATH,
        ledger_row(
            "batch",
            {
                "speedup": float(headline["speedup"]),
                "per_eval_batch_us": float(headline["per_eval_batch_us"]),
            },
            extra={"n": headline["n"]},
        ),
    )
    print(f"appended ledger row to {HISTORY_PATH}")


if __name__ == "__main__":
    main()
