"""Benchmark: adapting service vs frozen-model service across a drift episode.

Pins the claim the continual-learning subsystem exists for: on a workload
whose stencil-family mix shifts mid-stream, a service running the
:class:`~repro.online.ContinualLearningPipeline` (feedback collection →
drift detection → retrain → shadow-evaluate → promote) must recover
ranking quality that a frozen offline model permanently loses.

Both sides replay the **identical** deterministic episode (same instances,
same candidate sets, same ground-truth machine seed).  Reported:

* per-service post-shift mean Kendall τ (each grading its *own* served
  rankings against measured truth);
* a same-records comparison — the frozen offline model rescored on exactly
  the records the adapting service measured — which removes probe-subset
  variance from the headline number.

The ``cluster`` row replays the same claim at cluster scale: a 4-worker
:class:`~repro.service.cluster.ServiceCluster` streams feedback over the
wire to one coordinator-side
:class:`~repro.online.ClusterFeedbackCollector`, the pipeline retrains on
it, and the promotion propagates to every worker through the shared
registry — adapting must again beat frozen on the shifted traffic.

Run under pytest for the CI smoke (asserts ≥1 retrain+promotion and
adapting ≥ frozen, single-process and cluster), or as a script to record
``BENCH_online.json``::

    PYTHONPATH=src python benchmarks/bench_online.py
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np
import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.budget import BudgetedMachine
from repro.machine.executor import SimulatedMachine
from repro.online import (
    ClusterFeedbackCollector,
    ContinualConfig,
    ContinualLearningPipeline,
    DriftingWorkload,
    DriftMonitor,
    FeedbackCollector,
    IncrementalTrainer,
    PromotionPolicy,
    ShadowEvaluator,
    family_kernels,
    mean_model_tau,
)
from repro.obs.audit import AuditJournal
from repro.obs.ledger import append_row, ledger_row
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import QualityWatch
from repro.obs.slo import SLOEngine, SLObjective
from repro.service import ModelRegistry, ServiceCluster, TuningService

N_REQUESTS = 176
SHIFT_AT = 40
WAVE = 8
OFFLINE_POINTS = 840
CLUSTER_WORKERS = 4
ARTIFACTS = Path(__file__).parent / "artifacts"
OUT_PATH = ARTIFACTS / "BENCH_online.json"
HISTORY_PATH = Path(__file__).parent.parent / "BENCH_history.jsonl"
#: the quality watch must hold the whole episode, so its windowed
#: family gauges are directly comparable to the offline post-shift τ
QUALITY_WINDOW = 768

PHASE1 = ("line", "laplacian")
PHASE2 = ("hypercube", "hyperplane")


def _offline_tuner() -> tuple[OrdinalAutotuner, "TrainingSet"]:
    """The frozen baseline: trained on phase-1 families only."""
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    offline = builder.build(OFFLINE_POINTS, kernels=family_kernels(PHASE1))
    return OrdinalAutotuner().train(offline), offline


def _collector(cls=FeedbackCollector):
    """Uniform probes, identically seeded, no dedupe: both services measure
    the exact same (instance, tuning, truth) triple for every request, so
    their τ values are directly comparable record by record."""
    return cls(
        BudgetedMachine(SimulatedMachine(seed=11), max_evaluations=4096),
        probe_size=16,
        probe_mode="uniform",
        dedupe=False,
    )


def _pipeline(
    service, registry, tuner, offline, collector, quality=None, audit=None
) -> ContinualLearningPipeline:
    return ContinualLearningPipeline(
        service=service,
        collector=collector,
        monitor=DriftMonitor(
            tuner.encoder, window=48, tau_threshold=0.45, shift_threshold=1.2
        ).fit_reference(offline),
        trainer=IncrementalTrainer(offline, tuner.encoder, max_feedback=128),
        evaluator=ShadowEvaluator(tuner.encoder),
        policy=PromotionPolicy(registry, tag="prod", min_records=4),
        config=ContinualConfig(measure_per_step=10, min_feedback_to_train=16),
        quality=quality,
        audit=audit,
    )


async def _run(service, workload, collector, step) -> None:
    async with service:
        collector.attach(service)
        for start in range(0, N_REQUESTS, WAVE):
            wave = [workload.request(i) for i in range(start, start + WAVE)]
            await asyncio.gather(*(service.rank(q, c) for q, c in wave))
            step()
        collector.detach(service)


def run_episode(tuner, offline, adapting: bool) -> dict:
    """One full drift episode; returns the result row for one service."""
    workload = DriftingWorkload(
        shift_at=SHIFT_AT, phase1=PHASE1, phase2=PHASE2, seed=3
    )
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        v1 = registry.publish(
            tuner.model, tuner.fingerprint(), tags=("prod",), note="offline seed"
        )
        service = TuningService(registry, default_model="prod")
        if adapting:
            pipeline = _pipeline(service, registry, tuner, offline, _collector())
            collector, step = pipeline.collector, pipeline.step
        else:
            pipeline = None
            collector = _collector()
            step = lambda: collector.measure_pending(limit=10)  # noqa: E731
        asyncio.run(_run(service, workload, collector, step))

        records = collector.window()
        # shifted traffic is exactly the phase-2 families (the workload
        # only emits them after the shift point)
        post = [fb for fb in records if fb.family in PHASE2]
        row = {
            "adapting": adapting,
            "n_measured": len(records),
            "post_shift_records": len(post),
            "post_shift_tau": float(np.mean([fb.tau for fb in post])),
            "pre_shift_tau": float(
                np.mean([fb.tau for fb in records if fb.family not in PHASE2])
            ),
            "service_stats": service.stats(),
        }
        if pipeline is not None:
            row.update(
                retrains=pipeline.retrain_count,
                promotions=pipeline.promotion_count,
                rollbacks=pipeline.rollback_count,
                versions=registry.versions(),
                tags=registry.tags(),
                events=pipeline.events,
                # same-records comparison: the frozen offline model rescored
                # on exactly the records the adapting service measured
                frozen_tau_same_records=mean_model_tau(
                    tuner.encoder,
                    registry.load(v1, expect_fingerprint=tuner.fingerprint()),
                    post,
                ),
            )
        return row


def run_cluster_episode(tuner, offline, adapting: bool) -> dict:
    """The same drift episode served by a multi-process cluster.

    Workers stream every answer back as a wire-level
    ``FeedbackRecord`` (``feedback_every=1``); one coordinator-side
    :class:`ClusterFeedbackCollector` measures probes on one budget, and
    a promotion propagates to all workers through the shared registry's
    atomic tag move.  After the episode, fresh requests probe every alive
    worker to record which model version each shard now serves.
    """
    workload = DriftingWorkload(
        shift_at=SHIFT_AT, phase1=PHASE1, phase2=PHASE2, seed=3
    )
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        v1 = registry.publish(
            tuner.model, tuner.fingerprint(), tags=("prod",), note="offline seed"
        )
        collector = _collector(ClusterFeedbackCollector)
        # fleet-and-loop observability rides along on the adapting side:
        # rolling τ gauges fed from the same feedback stream, and an audit
        # journal capturing answers, tag moves and promotions
        quality = QualityWatch(MetricsRegistry(), window=QUALITY_WINDOW)
        journal = AuditJournal() if adapting else None
        if journal is not None:
            journal.attach_registry(registry)
        with ServiceCluster(
            tmp,
            n_workers=CLUSTER_WORKERS,
            default_model="prod",
            feedback_every=1,
            audit=journal,
        ) as cluster:
            if adapting:
                pipeline = _pipeline(
                    cluster, registry, tuner, offline, collector,
                    quality=quality, audit=journal,
                )
                pipeline.attach()
                step = pipeline.step
            else:
                pipeline = None
                collector.attach(cluster)
                # no pipeline, so stream measured records into the quality
                # gauges by hand — frozen rows report realized τ too
                step = lambda: [  # noqa: E731
                    quality.observe(fb)
                    for fb in collector.measure_pending(limit=10)
                ]
            for start in range(0, N_REQUESTS, WAVE):
                wave = [workload.request(i) for i in range(start, start + WAVE)]
                futures = [cluster.submit(q, c) for q, c in wave]
                for future in futures:
                    future.result()
                # feedback precedes each reply on its worker's pipe, so the
                # wave's records are all in the intake by now
                step()
            # which version does each shard serve now?  fresh (uncached)
            # post-episode requests, one per worker, prove promotion reached
            # every process
            versions_by_worker: dict[int, str] = {}
            probe_i = N_REQUESTS
            while (
                set(cluster.alive_workers()) - set(versions_by_worker)
                and probe_i < N_REQUESTS + 64
            ):
                q, c = workload.request(probe_i)
                reply = cluster.submit(q, c).result()
                versions_by_worker.setdefault(reply.worker_id, reply.model_version)
                probe_i += 1
            wire_records = cluster.feedback_received
            if pipeline is not None:
                pipeline.detach()
            else:
                collector.detach(cluster)

        records = collector.window()
        post = [fb for fb in records if fb.family in PHASE2]
        # realized online τ straight from the quality gauges: the per-family
        # windows hold the whole episode, so the count-weighted mean over
        # the shifted families must agree with the offline post-shift τ
        post_counts = {f: sum(1 for fb in post if fb.family == f) for f in PHASE2}
        n_post = sum(post_counts.values())
        realized_tau_online = (
            sum(quality.family_tau(f) * n for f, n in post_counts.items()) / n_post
            if n_post
            else 0.0
        )
        row = {
            "adapting": adapting,
            "workers": CLUSTER_WORKERS,
            "n_measured": len(records),
            "post_shift_records": len(post),
            "post_shift_tau": float(np.mean([fb.tau for fb in post])),
            "pre_shift_tau": float(
                np.mean([fb.tau for fb in records if fb.family not in PHASE2])
            ),
            "realized_tau_online": float(realized_tau_online),
            "quality": quality.snapshot(),
            "wire_records": wire_records,
            "records_by_worker": {
                int(w): int(n) for w, n in sorted(collector.records_by_worker.items())
            },
            "versions_by_worker": {
                int(w): v for w, v in sorted(versions_by_worker.items())
            },
            "serving_version": registry.resolve("prod"),
        }
        if pipeline is not None:
            replay = AuditJournal.replay(journal.entries())
            row.update(
                retrains=pipeline.retrain_count,
                promotions=pipeline.promotion_count,
                rollbacks=pipeline.rollback_count,
                tags=registry.tags(),
                events=pipeline.events,
                frozen_tau_same_records=mean_model_tau(
                    tuner.encoder,
                    registry.load(v1, expect_fingerprint=tuner.fingerprint()),
                    post,
                ),
                audit_entries=journal.verify(),
                audit_counts=replay["counts"],
            )
        return row


def bench_online(tuner=None, offline=None, cluster: bool = True) -> dict:
    if tuner is None:
        tuner, offline = _offline_tuner()
    adapting = run_episode(tuner, offline, adapting=True)
    frozen = run_episode(tuner, offline, adapting=False)
    result = {
        "workload": (
            f"{N_REQUESTS} requests, families {PHASE1} -> {PHASE2} at "
            f"request {SHIFT_AT}, 32 candidates/request, probe 16"
        ),
        "adapting": adapting,
        "frozen": frozen,
        "tau_gain_post_shift": adapting["post_shift_tau"] - frozen["post_shift_tau"],
    }
    if cluster:
        cluster_adapting = run_cluster_episode(tuner, offline, adapting=True)
        cluster_frozen = run_cluster_episode(tuner, offline, adapting=False)
        result["cluster"] = {
            "workload": (
                f"same episode, {CLUSTER_WORKERS}-worker ServiceCluster, "
                f"wire-level feedback (feedback_every=1)"
            ),
            "adapting": cluster_adapting,
            "frozen": cluster_frozen,
            "tau_gain_post_shift": (
                cluster_adapting["post_shift_tau"] - cluster_frozen["post_shift_tau"]
            ),
        }
    return result


# -- pytest smoke (the CI online-loop job) -------------------------------------


@pytest.fixture(scope="module")
def corpus():
    return _offline_tuner()


def test_online_loop_smoke(corpus):
    """Short drift episode: ≥1 retrain+promotion, adapting ≥ frozen."""
    tuner, offline = corpus
    result = bench_online(tuner, offline, cluster=False)
    adapting, frozen = result["adapting"], result["frozen"]
    assert adapting["retrains"] >= 1, adapting["events"]
    assert adapting["promotions"] >= 1, adapting["events"]
    # the service that adapted must rank the shifted traffic at least as
    # well as the frozen one — per-service and on identical records
    assert adapting["post_shift_tau"] >= frozen["post_shift_tau"], result
    assert adapting["post_shift_tau"] >= adapting["frozen_tau_same_records"], result


def test_cluster_online_loop_smoke(corpus):
    """The same loop at cluster scale: wire-fed retrain, promoted everywhere."""
    tuner, offline = corpus
    adapting = run_cluster_episode(tuner, offline, adapting=True)
    frozen = run_cluster_episode(tuner, offline, adapting=False)
    assert adapting["retrains"] >= 1, adapting["events"]
    assert adapting["promotions"] >= 1, adapting["events"]
    # feedback arrived over the wire (dedupe off: one record per request)
    assert adapting["wire_records"] >= N_REQUESTS
    assert len(adapting["records_by_worker"]) >= 2, adapting["records_by_worker"]
    # every worker now serves the promoted version
    serving = adapting["serving_version"]
    assert serving != "v0001"
    assert adapting["versions_by_worker"], adapting
    assert all(
        v == serving for v in adapting["versions_by_worker"].values()
    ), adapting["versions_by_worker"]
    assert adapting["post_shift_tau"] >= frozen["post_shift_tau"], (adapting, frozen)
    # realized online τ, read back from the streaming quality gauges, must
    # agree with the offline-computed post-shift τ (same records, so the
    # tolerance only absorbs float-summation order)
    assert (
        abs(adapting["realized_tau_online"] - adapting["post_shift_tau"]) <= 0.05
    ), (adapting["realized_tau_online"], adapting["post_shift_tau"])
    assert (
        abs(frozen["realized_tau_online"] - frozen["post_shift_tau"]) <= 0.05
    ), (frozen["realized_tau_online"], frozen["post_shift_tau"])
    # the audit journal saw every promotion exactly once, and the realized-τ
    # tracking started for the promoted version
    assert adapting["audit_counts"].get("promote", 0) == adapting["promotions"]
    outcomes = adapting["quality"]["outcomes"]
    assert outcomes and outcomes[-1]["version"] == serving, outcomes


def test_quality_slo_breach_on_injected_drop():
    """An injected post-promotion quality drop must flip the quality SLO to
    breach deterministically and fire the watch's regression alert once."""

    class _FB:
        def __init__(self, family, tau, version):
            self.family, self.tau, self.model_version = family, tau, version

    def drill():
        metrics = MetricsRegistry()
        watch = QualityWatch(
            metrics, window=8, alert_margin=0.1, min_outcome_records=4
        )
        engine = SLOEngine(
            [SLObjective("quality", kind="quality", target=0.6)],
            metrics=metrics,
            fast_window=2,
            slow_window=4,
        )
        watch.note_promotion("v0002", shadow_tau=0.85, production_tau=0.7)
        states = []
        # healthy post-promotion traffic, then a sustained quality collapse
        for tau in (0.9, 0.88, 0.86, 0.9) + (0.1,) * 8:
            watch.observe(_FB("line", tau, "v0002"))
            evaluation = engine.evaluate({}, quality_tau=watch.overall_tau())
            states.append(evaluation["quality"]["state"])
        return states, engine.events, list(watch.alerts)

    states, events, alerts = drill()
    assert states[3] == "ok", states  # healthy while τ holds
    assert states[-1] == "breach", states  # sustained drop pages
    assert any(e["to"] == "breach" for e in events), events
    # the watch's own regression alert fired exactly once, for the promotion
    assert len(alerts) == 1 and alerts[0]["version"] == "v0002", alerts
    assert alerts[0]["realized_tau"] < alerts[0]["floor"]
    # deterministic: the identical stream produces the identical transitions
    assert (states, events, alerts) == drill()


def main() -> None:
    result = bench_online()
    for side in ("adapting", "frozen"):
        row = result[side]
        extra = (
            f"  retrains {row['retrains']}  promotions {row['promotions']}"
            if side == "adapting"
            else ""
        )
        print(
            f"{side:9s}  pre-shift tau {row['pre_shift_tau']:+.3f}  "
            f"post-shift tau {row['post_shift_tau']:+.3f}{extra}"
        )
    print(f"post-shift tau gain: {result['tau_gain_post_shift']:+.3f}")
    cluster = result["cluster"]
    for side in ("adapting", "frozen"):
        row = cluster[side]
        extra = (
            f"  retrains {row['retrains']}  promotions {row['promotions']}  "
            f"serving {row['serving_version']} on all workers"
            if side == "adapting"
            else ""
        )
        print(
            f"cluster {side:9s}  ({row['workers']} workers, "
            f"{row['wire_records']} wire records)  "
            f"post-shift tau {row['post_shift_tau']:+.3f}  "
            f"realized online tau {row['realized_tau_online']:+.3f}{extra}"
        )
    print(f"cluster post-shift tau gain: {cluster['tau_gain_post_shift']:+.3f}")
    out = {k: v for k, v in result.items()}
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(out, indent=2, default=str) + "\n")
    print(f"wrote {OUT_PATH}")
    metrics = {
        "tau_gain_post_shift": float(result["tau_gain_post_shift"]),
        "adapting_post_shift_tau": float(result["adapting"]["post_shift_tau"]),
        "cluster_tau_gain_post_shift": float(cluster["tau_gain_post_shift"]),
        "cluster_realized_tau_online": float(
            cluster["adapting"]["realized_tau_online"]
        ),
    }
    append_row(HISTORY_PATH, ledger_row("online", metrics))
    print(f"appended ledger row to {HISTORY_PATH}")


if __name__ == "__main__":
    main()
