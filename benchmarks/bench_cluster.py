"""Benchmark of the multi-process cluster vs single-process serving.

Pins the scale-out claim of PR 4 on the **established 256-request mixed
preset load** (the ``bench_service.py`` workload: 16 distinct Fig. 4
instances round-robined 16×): a 4-worker
:class:`~repro.service.cluster.ServiceCluster` must clear **≥ 2.5×** the
throughput of the single-process per-request baseline (one synchronous
``rank_candidates`` pass per request — serving without batching, caching
or parallelism), while answering with bit-identical top-k prefixes.
Instance-affine routing is what makes this hold even on one core: every
repeat lands on its owner's cache, so the cluster does the distinct-
instance encodes once and answers the rest from per-worker LRUs.

A second, deliberately encode-heavy row (64 distinct instances × 4) is
recorded for the regime where fused encodes dominate.  The single-process
``TuningService`` is measured alongside for transparency: on a multi-core
box the cluster should beat it on the encode-heavy mix (parallel
encodes); on a 1-core box it cannot (same work + IPC), which is why every
row carries ``cpu_count``.

Requests use worker-side preset candidate sets (``candidates=None`` —
nothing preset-sized crosses the wire) and ``top_k=8`` answers with
``include_scores=False``, the thrifty wire mode a production client
would run.

Run under pytest for the CI-safe smoke (no timing assertions), or as a
script to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_cluster.py           # throughput rows
    PYTHONPATH=src python benchmarks/bench_cluster.py --chaos   # resilience soak
    PYTHONPATH=src python benchmarks/bench_cluster.py --trace   # stage attribution
    PYTHONPATH=src python benchmarks/bench_cluster.py --socket  # transport parity

In CI the script enforces a relaxed floor (cluster ≥ the single-process
baseline) because shared-runner wall clocks make exact ratios unreliable.

``--trace`` answers "where does a request's time go": the same mixed load
runs three ways — untraced, tracer-at-zero-sample-rate, and sampled at
50% — interleaved 3× (min-of-3 per mode filters scheduler noise).  The
sampled run's merged spans become a per-stage attribution (dispatch /
worker-ingress / service-queue / encode / score / service-finish /
reply-egress) that must cover ≥90% of each traced request's wall clock;
tracing overhead is bounded (off ≤1%, sampled ≤5%, scaled by
``TRACE_OVERHEAD_SLACK`` for noisy shared runners); merged-histogram
p50/p99 must agree with the pooled-window percentiles within one bucket
width.  The outcome lands as a ``"kind": "attribution"`` row in
``BENCH_cluster.json`` and the merged spans as ``TRACE_cluster.jsonl``.

``--chaos`` runs the resilience drill instead: the same 256-request mixed
load while one worker is SIGKILLed mid-run, one slow-lorises its event
loop, one corrupts reply frames, and the shared ``tags.json`` is smashed
mid-run — plus a sub-deadline slice that exercises degraded answers.  The
acceptance criteria are hard-asserted (100% of requests complete, correct
or explicitly degraded; zero hangs; zero coordinator crashes; the
quarantined worker is readmitted) and the outcome is merged into
``BENCH_cluster.json`` as a ``"kind": "chaos"`` row.

``--socket`` is the cross-transport parity soak: the identical 256-request
mixed preset load is served by a pipe cluster and by a loopback-socket
cluster (workers dial back into the coordinator over TCP, length-prefixed
frames), and the two answer streams must be **bit-identical** — the
acceptance gate for the socket transport.  The weighted-rendezvous share
check rides along (a weight-2 worker must take 2×±15% a weight-1 worker's
shards over 20k keys).  The outcome is merged into ``BENCH_cluster.json``
as a ``"kind": "socket"`` row and appended to the ledger as
``cluster-socket``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np
import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.executor import SimulatedMachine
from repro.obs.audit import AuditJournal
from repro.obs.ledger import (
    append_row,
    check_regression,
    format_report,
    git_sha,
    ledger_row,
)
from repro.obs.metrics import Histogram
from repro.obs.slo import SLOEngine, default_objectives
from repro.obs.trace import TraceConfig, stage_breakdown, write_jsonl
from repro.service import ModelRegistry, ServiceCluster, TuningService
from repro.service.shm import leaked_segments
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import TRAINING_SHAPES
from repro.stencil.suite import TEST_BENCHMARKS
from repro.tuning.presets import preset_candidates

N_CONCURRENT = 256
#: the established mixed preset load (bench_service.py): 16 distinct × 16
N_DISTINCT = 16
#: the encode-heavy stress mix: 64 distinct × 4
N_DISTINCT_STRESS = 64
N_WORKERS = 4
TOP_K = 8
TRAINING_POINTS = 640
#: per-run artifacts (gitignored churn); curated history stays at the root
ARTIFACTS = Path(__file__).parent / "artifacts"
OUT_PATH = ARTIFACTS / "BENCH_cluster.json"
TRACE_PATH = ARTIFACTS / "TRACE_cluster.jsonl"
AUDIT_PATH = ARTIFACTS / "AUDIT_cluster.jsonl"
#: the tracked longitudinal ledger every bench main() appends to
HISTORY_PATH = Path(__file__).parent.parent / "BENCH_history.jsonl"


def _train_tuner(points: int = TRAINING_POINTS) -> OrdinalAutotuner:
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    return OrdinalAutotuner().train(builder.build(points))


def _distinct_instances(n: int) -> list[StencilInstance]:
    """``n`` distinct instances: 3-D and 2-D, all families, varied content."""
    families = sorted(TRAINING_SHAPES)
    out: list[StencilInstance] = []
    i = 0
    while len(out) < n:
        dims = 2 if i % 4 == 3 else 3  # one quarter 2-D traffic
        family = families[i % len(families)]
        radius = 1 + (i // len(families)) % 2
        dtype = ("float", "double")[(i // (2 * len(families))) % 2]
        base = 48 + 16 * ((i // (4 * len(families))) % 6)
        kernel = StencilKernel(
            f"{family}-bench-{dims}d-r{radius}-{dtype}",
            (TRAINING_SHAPES[family](dims, radius),),
            dtype=dtype,
            space_dims=dims,
        )
        size = (base, base, base) if dims == 3 else (4 * base, 4 * base, 1)
        out.append(StencilInstance(kernel, size))
        i += 1
    return out


def _workload(n_requests: int, n_distinct: int) -> list[StencilInstance]:
    """Mixed preset load: ``n_distinct`` instances, repeats shuffled in.

    At the default 16 this is exactly the ``bench_service.py`` pool (the
    Fig. 4 benchmarks); larger counts extend it with synthetic instances
    for the encode-heavy regime.
    """
    if n_distinct <= len(TEST_BENCHMARKS):
        pool = list(TEST_BENCHMARKS[:n_distinct])
    else:
        pool = _distinct_instances(n_distinct)
    requests = [pool[i % len(pool)] for i in range(n_requests)]
    rng = np.random.default_rng(2024)
    rng.shuffle(requests)
    return requests


def _sequential(tuner: OrdinalAutotuner, instances, presets) -> tuple[list, float]:
    """Single-process per-request baseline: one rank_candidates per request.

    Preset lists are precomputed and shared, so the loop pays encode+score
    only — the same work per request that ``tune()`` would do, minus
    preset regeneration (which would only flatter the other sides).
    """
    start = time.perf_counter()
    tops = [
        tuner.rank_candidates(q, presets[q.dims])[:TOP_K] for q in instances
    ]
    return tops, time.perf_counter() - start


async def _serve_single(registry: ModelRegistry, instances) -> tuple[list, float, dict]:
    """Single-process TuningService on the identical workload (top-k mode)."""
    async with TuningService(registry, default_model="prod") as service:
        start = time.perf_counter()
        responses = await asyncio.gather(
            *(service.rank(q, top_k=TOP_K) for q in instances)
        )
        elapsed = time.perf_counter() - start
        return [r.ranked for r in responses], elapsed, service.stats()


def _warm_instances(cluster, per_worker: int = 3) -> list[StencilInstance]:
    """Warmup instances covering *every* worker's shard, none in the workload.

    Routing is instance-affine, so a blind warmup can leave workers cold
    (model load, first fused encode, allocator growth) and charge that to
    the timed region.  The parent shares the router, so it can pick warm
    instances per shard deterministically.
    """
    from repro.stencil.execution import instance_hash

    # drawn past every workload pool, so warming never pre-fills a cache
    # entry the timed region will ask for
    pool = _distinct_instances(N_DISTINCT_STRESS + 64)[N_DISTINCT_STRESS:]
    per_shard: dict[int, int] = {}
    picked = []
    for q in pool:
        worker = cluster.router.route(instance_hash(q))
        if per_shard.get(worker, 0) < per_worker:
            per_shard[worker] = per_shard.get(worker, 0) + 1
            picked.append(q)
        if len(per_shard) == len(cluster.alive_workers()) and all(
            n >= per_worker for n in per_shard.values()
        ):
            break
    return picked


def _serve_cluster(
    registry_root,
    instances,
    n_workers: int,
    trace: "TraceConfig | None" = None,
    audit: "AuditJournal | None" = None,
    transport: str = "pipe",
) -> tuple[list, float, dict, list]:
    """The cluster side: concurrent submits, worker-side presets, thrifty wire."""
    with ServiceCluster(
        registry_root,
        n_workers=n_workers,
        default_model="prod",
        trace=trace,
        audit=audit,
        transport=transport,
    ) as cluster:
        # warm every worker (imports, model load, first fused preset
        # encodes) off the clock — the timed region measures serving, not
        # process boot
        warm_futures = [
            cluster.submit(q, top_k=1, include_scores=False)
            for q in _warm_instances(cluster)
        ]
        for fut in warm_futures:
            fut.result(timeout=300)
        start = time.perf_counter()
        futures = [
            cluster.submit(q, top_k=TOP_K, include_scores=False) for q in instances
        ]
        answers = [f.result(timeout=600) for f in futures]
        elapsed = time.perf_counter() - start
        stats = cluster.stats()
        spans = cluster.trace_spans()
    return [a.ranked for a in answers], elapsed, stats, spans


def bench_cluster(
    n_requests: int = N_CONCURRENT,
    n_distinct: int = N_DISTINCT,
    n_workers: int = N_WORKERS,
    tuner: "OrdinalAutotuner | None" = None,
) -> dict:
    """One full three-way comparison; returns the result row (plus answers)."""
    tuner = tuner or _train_tuner()
    instances = _workload(n_requests, n_distinct)
    presets = {2: preset_candidates(2), 3: preset_candidates(3)}
    # untimed warmup of the in-process sides
    pool = instances[:8]
    _sequential(tuner, pool, presets)
    tuner.encoder.encode_many([(q, presets[q.dims]) for q in pool])
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        clustered, cluster_s, cluster_stats, _ = _serve_cluster(
            tmp, instances, n_workers
        )
        single, single_s, single_stats = asyncio.run(_serve_single(registry, instances))
    sequential, sequential_s = _sequential(tuner, instances, presets)
    return {
        "n_requests": n_requests,
        "n_distinct_instances": n_distinct,
        "n_workers": n_workers,
        "top_k": TOP_K,
        "cpu_count": os.cpu_count(),
        "cluster_s": cluster_s,
        "single_service_s": single_s,
        "sequential_s": sequential_s,
        "cluster_rps": n_requests / cluster_s,
        "single_service_rps": n_requests / single_s,
        "sequential_rps": n_requests / sequential_s,
        "speedup_vs_single_process": sequential_s / cluster_s,
        "speedup_vs_single_service": single_s / cluster_s,
        "cluster_stats": cluster_stats["cluster"],
        "single_service_stats": single_stats,
        "_clustered": clustered,
        "_single": single,
        "_sequential": sequential,
    }


def bench_chaos(
    n_requests: int = N_CONCURRENT,
    n_workers: int = N_WORKERS,
    tuner: "OrdinalAutotuner | None" = None,
) -> dict:
    """The resilience soak: the mixed load under simultaneous injected faults.

    Fault script (all deterministic given the request stream):

    * worker 1 slow-lorises (blocks its event loop 1.5 s) on its first
      request — heartbeat silence must quarantine it, its pending work
      must requeue, and a probe must readmit it after recovery;
    * worker 2 corrupts every 2nd reply frame for its first 6 requests —
      the parent must count the garbage frames and recover each victim
      request by attempt-timeout retry;
    * worker 0 is SIGKILLed after the first half of the load is inflight
      (and restarts);
    * ``tags.json`` is corrupted mid-run — every registry read must fall
      back to the checksum-verified mirror;
    * a trailing slice of requests carries a microscopic deadline, forcing
      the coordinator's degraded-answer path (store replay / local scoring).

    Hard-asserted acceptance: every request completes (bit-identical top-k
    or explicitly ``degraded=True`` — also bit-identical here, since only
    one model version exists), zero hangs, zero coordinator crashes beyond
    the one injected kill, the quarantined worker is readmitted.
    """
    from repro.service import ResilienceConfig
    from repro.service.chaos import ChaosConfig, corrupt_registry_tags

    tuner = tuner or _train_tuner()
    instances = _workload(n_requests, N_DISTINCT)
    presets = {2: preset_candidates(2), 3: preset_candidates(3)}
    oracle = {
        q: tuner.rank_candidates(q, presets[q.dims])[:TOP_K]
        for q in set(instances)
    }
    degraded_slice = instances[: max(8, n_requests // 16)]
    journal = AuditJournal()
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        start = time.perf_counter()
        with ServiceCluster(
            tmp,
            n_workers=n_workers,
            default_model="prod",
            restart_workers=True,
            audit=journal,
            chaos={
                1: ChaosConfig(slow_loris_s=1.5, burst_n=1),
                2: ChaosConfig(corrupt_reply_every=2, burst_n=6),
            },
            resilience=ResilienceConfig(
                default_deadline_s=60.0,
                attempt_timeout_s=0.5,
                max_retries=4,
                retry_backoff_s=0.02,
                degraded_answers=True,
                heartbeat_interval_s=0.05,
                heartbeat_stale_s=0.5,
                probe_interval_s=0.1,
                monitor_interval_s=0.02,
                quarantine_after=6,  # frame corruption alone must not unroute
            ),
        ) as cluster:
            for fut in [
                cluster.submit(q, top_k=1, include_scores=False)
                for q in _warm_instances(cluster)
            ]:
                fut.result(timeout=300)
            futures = [
                cluster.submit(q, top_k=TOP_K, include_scores=False)
                for q in instances[: n_requests // 2]
            ]
            cluster.kill_worker(0)
            corrupt_registry_tags(tmp)
            futures += [
                cluster.submit(q, top_k=TOP_K, include_scores=False)
                for q in instances[n_requests // 2 :]
            ]
            # zero hangs: every future must settle inside the drill timeout
            answers = [f.result(timeout=120) for f in futures]
            degraded_futures = [
                cluster.submit(
                    q, top_k=TOP_K, include_scores=False, deadline_s=0.001
                )
                for q in degraded_slice
            ]
            degraded_answers = [f.result(timeout=120) for f in degraded_futures]
            # the recovered loris must be readmitted before the drill ends
            deadline = time.monotonic() + 60
            while cluster.readmissions < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            elapsed = time.perf_counter() - start
            stats = cluster.stats(timeout_s=30)
            events = list(cluster.events)
        # corrupted tags.json was contained: the mirror still resolves
        assert ModelRegistry(tmp).resolve("prod") == "v0001"
        # crash-safety of the slab transport: a soak full of SIGKILLs,
        # restarts and quarantines must leave nothing behind in /dev/shm
        leaked = leaked_segments(f"rsl-{os.getpid()}-")
        assert leaked == [], f"leaked shared-memory segments: {leaked}"

    all_answers = answers + degraded_answers
    assert len(all_answers) == len(instances) + len(degraded_slice), (
        "every request must complete"
    )
    for q, a in zip(instances + degraded_slice, all_answers):
        assert a.ranked == oracle[q], (
            f"answer diverged (worker {a.worker_id}, degraded={a.degraded})"
        )
    assert cluster.crashes == 1, "only the injected kill may crash anything"
    assert cluster.corrupted_frames >= 1, "the garbage frames must be observed"
    assert cluster.quarantines >= 1, "the loris must be quarantined"
    assert cluster.readmissions >= 1, "the recovered loris must be readmitted"
    # the audit journal proves the fleet story end to end: a valid
    # checksum chain, and every SIGKILL / quarantine / readmit recorded
    # exactly once (event counts match the coordinator's own counters)
    n_audit = journal.verify()
    replay = AuditJournal.replay(journal.entries())
    counts = replay["counts"]
    assert counts.get("worker-exit", 0) == cluster.crashes == 1, counts
    assert counts.get("quarantine", 0) == cluster.quarantines, counts
    assert counts.get("readmit", 0) == cluster.readmissions, counts
    assert counts.get("answer", 0) >= len(all_answers), counts
    # every completed request is reconstructible: which version, and why
    versions = {r.model_version for r in all_answers}
    for entry in replay["answers"].values():
        assert entry["model_version"] in versions, entry
    resilience = stats["resilience"]
    return {
        "kind": "chaos",
        "n_requests": len(all_answers),
        "n_workers": n_workers,
        "top_k": TOP_K,
        "cpu_count": os.cpu_count(),
        "elapsed_s": elapsed,
        "completed": len(all_answers),
        "degraded_answers": sum(1 for a in all_answers if a.degraded),
        "crashes": cluster.crashes,
        "timeouts": resilience["timeouts"],
        "retries_scheduled": resilience["retries_scheduled"],
        "corrupted_frames": resilience["corrupted_frames"],
        "quarantines": resilience["quarantines"],
        "readmissions": resilience["readmissions"],
        "worker_events": [
            {k: v for k, v in e.items() if k != "pid"} for e in events
        ],
        "faults": (
            "worker 0 SIGKILLed mid-run (restarted); worker 1 slow-loris "
            "1.5s; worker 2 corrupt reply frames (every 2nd of first 6); "
            "tags.json corrupted mid-run; trailing sub-ms-deadline slice"
        ),
        "acceptance": (
            "100% completion (bit-identical or degraded=True), 0 hangs, "
            "0 coordinator crashes, quarantined worker readmitted; audit "
            "chain verifies with kill/quarantine/readmit exactly once"
        ),
        "audit_entries": n_audit,
        "audit_chain_ok": True,
        "shm_leaked_segments": 0,  # hard-asserted above
        "audit_counts": {
            k: counts.get(k, 0)
            for k in ("worker-exit", "quarantine", "readmit", "answer",
                      "degrade", "breaker-transition", "spawn")
        },
        # private (stripped before JSON): the replay fold and the journal,
        # for the two-run bit-identity assertion and the artifact dump
        "_version_map": {
            req_id: entry["model_version"]
            for req_id, entry in replay["answers"].items()
        },
        "_journal": journal,
    }


def _hist_bucket_width_ms(hist_dict: dict, value_ms: float) -> float:
    """Width (ms) of the histogram bucket that ``value_ms`` falls into."""
    h = Histogram(
        lowest=hist_dict["lowest"],
        growth=hist_dict["growth"],
        buckets=hist_dict["buckets"],
    )
    lower, upper = h.bucket_bounds(h.bucket_index(value_ms / 1e3))
    return (upper - lower) * 1e3


def bench_trace(
    n_requests: int = N_CONCURRENT,
    n_distinct: int = N_DISTINCT,
    n_workers: int = N_WORKERS,
    reps: int = 3,
    sample_rate: float = 0.5,
    tuner: "OrdinalAutotuner | None" = None,
) -> dict:
    """Stage attribution + tracing-overhead bound on the established load.

    Three cluster configurations serve the identical mixed preset load,
    interleaved ``reps`` times (A/B/C A/B/C ... so slow-runner drift hits
    all three equally), min-of-reps per mode:

    * ``untraced``  — ``trace=None``: the no-op fast path (baseline);
    * ``off``       — ``TraceConfig(sample_rate=0)``: tracer constructed,
      every request declined at the sampling gate (bound: ≤1% overhead);
    * ``sampled``   — ``TraceConfig(sample_rate=0.5)``: half the requests
      carry spans over the wire (bound: ≤5% overhead).

    Both bounds scale by ``TRACE_OVERHEAD_SLACK`` (env, default 1.0) for
    noisy shared runners.  The sampled run's merged spans yield the
    per-stage attribution (must cover ≥90% of traced wall clock per
    request) and are dumped to ``TRACE_cluster.jsonl``; its cluster stats
    cross-check merged-histogram p50/p99 against the pooled-window
    percentiles (must agree within one bucket width).
    """
    tuner = tuner or _train_tuner()
    instances = _workload(n_requests, n_distinct)
    presets = {2: preset_candidates(2), 3: preset_candidates(3)}
    oracle = {
        q: tuner.rank_candidates(q, presets[q.dims])[:TOP_K]
        for q in set(instances)
    }
    modes: "dict[str, TraceConfig | None]" = {
        "untraced": None,
        "off": TraceConfig(sample_rate=0.0),
        "sampled": TraceConfig(sample_rate=sample_rate),
    }
    times: dict[str, list[float]] = {name: [] for name in modes}
    sampled_answers: list = []
    sampled_stats: dict = {}
    sampled_spans: list = []
    sampled_audit: "AuditJournal | None" = None
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        for _ in range(reps):
            for name, cfg in modes.items():
                # the PR-7 overhead bounds must keep holding with the
                # audit journal enabled: both instrumented modes pay the
                # per-answer audit append; only the baseline stays bare
                audit = AuditJournal() if cfg is not None else None
                answers, elapsed, stats, spans = _serve_cluster(
                    tmp, instances, n_workers, trace=cfg, audit=audit
                )
                times[name].append(elapsed)
                if name == "sampled":
                    sampled_answers = answers
                    sampled_stats = stats
                    sampled_spans = spans
                    sampled_audit = audit
    for q, a in zip(instances, sampled_answers):
        assert a == oracle[q], "tracing must never change an answer"

    best = {name: min(samples) for name, samples in times.items()}
    slack = float(os.environ.get("TRACE_OVERHEAD_SLACK", "1.0"))
    overhead_off = best["off"] / best["untraced"] - 1.0
    overhead_sampled = best["sampled"] / best["untraced"] - 1.0
    assert overhead_off <= 0.01 * slack, (
        f"tracing-off overhead {overhead_off:+.2%} exceeds 1% "
        f"(slack {slack}x; min-of-{reps})"
    )
    assert overhead_sampled <= 0.05 * slack, (
        f"sampled-tracing overhead {overhead_sampled:+.2%} exceeds 5% "
        f"(slack {slack}x; min-of-{reps})"
    )

    report = stage_breakdown(sampled_spans)
    assert report["n_traces"] > 0, "the sampled run must trace something"
    assert report["coverage_mean"] >= 0.90, (
        f"stage attribution covers only {report['coverage_mean']:.1%} of "
        f"traced wall clock (floor 90%)"
    )

    merged = sampled_stats["cluster"]
    hist = merged["latency_hist"]
    agreement = {}
    for q in (50, 99):
        hist_ms = merged[f"latency_p{q}_ms"]
        pooled_ms = merged[f"latency_pooled_p{q}_ms"]
        tol_ms = max(
            _hist_bucket_width_ms(hist, hist_ms),
            _hist_bucket_width_ms(hist, pooled_ms),
        )
        assert abs(hist_ms - pooled_ms) <= tol_ms, (
            f"merged-histogram p{q} {hist_ms:.3f}ms disagrees with pooled "
            f"p{q} {pooled_ms:.3f}ms beyond one bucket width ({tol_ms:.3f}ms)"
        )
        agreement[f"p{q}"] = {
            "hist_ms": hist_ms,
            "pooled_ms": pooled_ms,
            "bucket_width_ms": tol_ms,
        }

    # audit journal sanity under load: valid chain, every request's answer
    assert sampled_audit is not None
    n_audit = sampled_audit.verify()
    assert n_audit >= n_requests, "an answer event per request, at least"
    # SLO engine over the run's merged stats: one tick must evaluate every
    # default objective without touching the serving path
    slo = SLOEngine(default_objectives(latency_p99_s=60.0))
    evaluation = slo.evaluate(merged)
    assert evaluation["availability"]["state"] == "ok", evaluation

    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    n_spans = write_jsonl(TRACE_PATH, sampled_spans)
    return {
        "kind": "attribution",
        "audit_entries": n_audit,
        "slo_states": {name: row["state"] for name, row in evaluation.items()},
        "n_requests": n_requests,
        "n_distinct_instances": n_distinct,
        "n_workers": n_workers,
        "top_k": TOP_K,
        "cpu_count": os.cpu_count(),
        "reps": reps,
        "sample_rate": sample_rate,
        "untraced_s": best["untraced"],
        "trace_off_s": best["off"],
        "sampled_s": best["sampled"],
        "overhead_off": overhead_off,
        "overhead_sampled": overhead_sampled,
        "overhead_bounds": {"off": 0.01 * slack, "sampled": 0.05 * slack},
        "n_traces": report["n_traces"],
        "n_spans": n_spans,
        "coverage_mean": report["coverage_mean"],
        "coverage_min": report["coverage_min"],
        "coverage_p10": report["coverage_p10"],
        "stages": report["stages"],
        "percentile_agreement": agreement,
        "trace_file": TRACE_PATH.name,
        "acceptance": (
            "stage attribution >= 90% of traced wall clock per request; "
            "tracing-off overhead <= 1%, sampled <= 5% vs untraced "
            "(x TRACE_OVERHEAD_SLACK); merged-histogram p50/p99 within one "
            "bucket width of pooled-window percentiles"
        ),
    }


def bench_socket(
    n_requests: int = N_CONCURRENT,
    n_workers: int = 2,
    tuner: "OrdinalAutotuner | None" = None,
) -> dict:
    """Cross-transport parity: pipe-served vs socket-served, same bytes.

    The same mixed preset workload runs against a pipe cluster and a
    loopback-socket cluster built from the same registry.  Acceptance is
    bit-identity of the full top-k answer streams — timing is recorded for
    the trajectory but never asserted (loopback TCP pays a syscall tax a
    shared runner cannot measure fairly).  The weighted-rendezvous share
    check (the 2×±15% criterion) is asserted alongside, since capacity
    weights exist for exactly this heterogeneous-transport posture.
    """
    from repro.service import ShardRouter
    from repro.util.rng import hash_seed

    tuner = tuner or _train_tuner()
    instances = _workload(n_requests, N_DISTINCT)
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        piped, pipe_s, pipe_stats, _ = _serve_cluster(
            tmp, instances, n_workers, transport="pipe"
        )
        socketed, socket_s, socket_stats, _ = _serve_cluster(
            tmp, instances, n_workers, transport="socket"
        )
    assert socketed == piped, (
        "socket-served top-k answers diverged from pipe-served answers"
    )
    assert socket_stats["cluster"]["failed_total"] == 0
    assert socket_stats["cluster"]["corrupted_frames_total"] == 0
    assert socket_stats["missing_workers"] == []
    # the weighted-rendezvous acceptance: weight 2 ⇒ 2×±15% the shards
    router = ShardRouter(range(3), weights={0: 2.0})
    keys = [hash_seed("bench-weighted-routing", i) for i in range(20_000)]
    shares: dict[int, int] = {w: 0 for w in range(3)}
    for key in keys:
        shares[router.route(key)] += 1
    light_mean = (shares[1] + shares[2]) / 2
    weighted_ratio = shares[0] / light_mean
    assert 2.0 * 0.85 <= weighted_ratio <= 2.0 * 1.15, (
        f"weight-2 worker took {weighted_ratio:.2f}x a weight-1 worker's shards"
    )
    return {
        "kind": "socket",
        "n_requests": n_requests,
        "n_workers": n_workers,
        "top_k": TOP_K,
        "cpu_count": os.cpu_count(),
        "pipe_s": pipe_s,
        "socket_s": socket_s,
        "pipe_rps": n_requests / pipe_s,
        "socket_rps": n_requests / socket_s,
        "socket_over_pipe": socket_s / pipe_s,
        "bit_identical": True,
        "weighted_ratio": weighted_ratio,
        "pipe_stats": pipe_stats["cluster"],
        "socket_stats": socket_stats["cluster"],
    }


# -- pytest smoke (timing-free where CI is involved) ---------------------------


@pytest.fixture(scope="module")
def tuner():
    return _train_tuner()


def test_smoke_two_workers_mixed_load(tuner):
    """2 workers, 48 mixed requests: bit-identical top-k vs both baselines,
    no failures, both shards exercised, repeats cached worker-side."""
    result = bench_cluster(48, n_distinct=12, n_workers=2, tuner=tuner)
    assert result["_clustered"] == result["_sequential"], "top-k answers diverged"
    assert result["_clustered"] == result["_single"]
    stats = result["cluster_stats"]
    assert stats["workers"] == 2
    assert stats["failed_total"] == 0
    assert stats["requests_total"] >= 48  # workload (+ per-shard warmup)
    assert stats["cache_hits"] > 0, "repeats must hit the per-worker caches"


def test_smoke_socket_parity(tuner):
    """Timing-free slice of ``--socket``: 48 requests, pipe vs loopback TCP,
    bit-identical answers and the weighted share inside the 2×±15% band."""
    row = bench_socket(48, n_workers=2, tuner=tuner)
    assert row["bit_identical"] is True
    assert 2.0 * 0.85 <= row["weighted_ratio"] <= 2.0 * 1.15
    assert row["socket_stats"]["requests_total"] >= 48


def test_smoke_trace_attribution(tuner):
    """Timing-free slice of ``--trace``: a fully-sampled 32-request run must
    yield complete per-stage attribution covering >=90% of wall clock."""
    instances = _workload(32, n_distinct=8)
    presets = {2: preset_candidates(2), 3: preset_candidates(3)}
    oracle = {
        q: tuner.rank_candidates(q, presets[q.dims])[:TOP_K]
        for q in set(instances)
    }
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        answers, _, stats, spans = _serve_cluster(
            tmp, instances, n_workers=2, trace=TraceConfig(sample_rate=1.0)
        )
    for q, a in zip(instances, answers):
        assert a == oracle[q], "tracing must never change an answer"
    report = stage_breakdown(spans)
    assert report["n_traces"] >= len(instances)  # workload (+ traced warmup)
    assert report["coverage_mean"] >= 0.90, report
    assert {"dispatch", "service-queue", "reply-egress"} <= set(report["stages"])
    merged = stats["cluster"]
    assert merged["latency_hist"]["count"] >= len(instances)
    assert merged["latency_p99_ms"] >= merged["latency_p50_ms"] > 0.0


def main() -> None:
    """Record the cluster-vs-single trajectory to BENCH_cluster.json."""
    tuner = _train_tuner()
    # BENCH_CLUSTER_WORKERS drives the CI matrix: a 2-core runner benches a
    # 2-worker cluster instead of oversubscribing with the default 4
    bench_workers = int(os.environ.get("BENCH_CLUSTER_WORKERS", N_WORKERS))
    rows = []
    for n_workers, n_distinct in (
        (1, N_DISTINCT),
        (bench_workers, N_DISTINCT),  # the headline row (acceptance gate)
        (bench_workers, N_DISTINCT_STRESS),  # encode-heavy stress mix
    ):
        row = bench_cluster(N_CONCURRENT, n_distinct, n_workers, tuner)
        assert row.pop("_clustered") == row.pop("_sequential"), "answers diverged"
        row.pop("_single")
        rows.append(row)
        print(
            f"workers={n_workers} distinct={n_distinct:3d}  "
            f"cluster {row['cluster_s'] * 1e3:8.1f} ms "
            f"({row['cluster_rps']:6.0f} req/s)  "
            f"single-service {row['single_service_s'] * 1e3:8.1f} ms  "
            f"sequential {row['sequential_s'] * 1e3:8.1f} ms  "
            f"vs-single-process {row['speedup_vs_single_process']:5.2f}x  "
            f"vs-single-service {row['speedup_vs_single_service']:5.2f}x  "
            f"hit rate {row['cluster_stats']['cache_hit_rate']:.2f}"
        )
    headline = rows[1]
    in_ci = os.environ.get("CI", "").lower() == "true"
    floor = 1.0 if in_ci else 2.5
    assert headline["speedup_vs_single_process"] >= floor, (
        f"cluster at {bench_workers} workers is only "
        f"{headline['speedup_vs_single_process']:.2f}x the single-process "
        f"baseline on the mixed preset load (floor {floor}x)"
    )
    # the multicore matrix job (cpu_count >= 2) pins real parallel speedup:
    # the cluster must beat BOTH baselines outright, not merely tread water
    if os.environ.get("BENCH_MULTICORE", "") == "1":
        assert (os.cpu_count() or 1) >= 2, (
            "BENCH_MULTICORE=1 requires a multi-core runner "
            f"(cpu_count={os.cpu_count()})"
        )
        assert headline["speedup_vs_single_process"] > 1.0, (
            f"multicore floor: cluster at {bench_workers} workers must beat "
            f"the single-process baseline, got "
            f"{headline['speedup_vs_single_process']:.2f}x"
        )
        assert headline["speedup_vs_single_service"] > 1.0, (
            f"multicore floor: cluster at {bench_workers} workers must beat "
            f"the single in-process service, got "
            f"{headline['speedup_vs_single_service']:.2f}x"
        )
    payload = {
        "benchmark": (
            "ServiceCluster (multi-process, instance-affine) vs single-process "
            "serving"
        ),
        "workload": (
            f"{N_CONCURRENT} concurrent top-{TOP_K} requests; headline row: "
            f"the bench_service mixed preset load ({N_DISTINCT} distinct "
            f"Fig. 4 instances x {N_CONCURRENT // N_DISTINCT}); stress row: "
            f"{N_DISTINCT_STRESS} distinct mixed 2-D/3-D instances x "
            f"{N_CONCURRENT // N_DISTINCT_STRESS}; worker-side preset "
            f"candidate sets (1600 2-D / 8640 3-D)"
        ),
        "baselines": {
            "single_process": "sequential per-request rank_candidates loop",
            "single_service": "one in-process TuningService (batched + cached)",
        },
        "acceptance": (
            f">= 2.5x vs single_process at {N_WORKERS} workers on the mixed "
            f"preset load (CI floor: >= 1.0x on shared runners)"
        ),
        "results": rows,
    }
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    # longitudinal ledger + trailing-median sentinel (report-only: the
    # sentinel's verdict gates nothing until the history is deep enough)
    metrics = {
        "cluster_rps": headline["cluster_rps"],
        "speedup_vs_single_process": headline["speedup_vs_single_process"],
        "cluster_latency_p99_ms": headline["cluster_stats"].get(
            "latency_p99_ms", 0.0
        ),
    }
    report = check_regression(
        HISTORY_PATH,
        "cluster",
        metrics,
        {
            "cluster_rps": ("higher", 0.5),
            "speedup_vs_single_process": ("higher", 0.5),
            "cluster_latency_p99_ms": ("lower", 2.0),
        },
        current_sha=git_sha(),
    )
    print(format_report(report))
    append_row(
        HISTORY_PATH,
        ledger_row(
            "cluster",
            metrics,
            extra={"n_workers": headline["n_workers"],
                   "n_distinct": headline["n_distinct_instances"]},
        ),
    )
    print(f"appended cluster row to {HISTORY_PATH}")


def main_chaos() -> None:
    """Run the chaos soak twice and merge its row into BENCH_cluster.json.

    The second run pins replay determinism: at the same seed, the audit
    journals of both runs must reconstruct the identical
    model-version-per-request mapping (``AuditJournal.replay``), even
    though scheduler-dependent event interleavings differ.
    """
    tuner = _train_tuner()
    row = bench_chaos(tuner=tuner)
    rerun = bench_chaos(tuner=tuner)
    assert row["_version_map"] == rerun["_version_map"], (
        "audit replay must reconstruct model-version-per-request "
        "bit-identically across two runs at the same seed"
    )
    journal = row.pop("_journal")
    rerun.pop("_journal")
    row.pop("_version_map")
    rerun.pop("_version_map")
    row["replay_bit_identical"] = True
    print(
        f"chaos soak: {row['completed']} completed "
        f"({row['degraded_answers']} degraded) in {row['elapsed_s']:.1f}s  "
        f"timeouts={row['timeouts']} retries={row['retries_scheduled']} "
        f"corrupt_frames={row['corrupted_frames']} "
        f"quarantines={row['quarantines']} readmissions={row['readmissions']}  "
        f"audit={row['audit_entries']} entries (chain ok, replay reproducible)"
    )
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    journal.write(AUDIT_PATH)
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    else:
        payload = {
            "benchmark": (
                "ServiceCluster (multi-process, instance-affine) vs "
                "single-process serving"
            ),
            "results": [],
        }
    payload["results"] = [
        r for r in payload.get("results", []) if r.get("kind") != "chaos"
    ] + [row]
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    append_row(
        HISTORY_PATH,
        ledger_row(
            "cluster-chaos",
            {
                "elapsed_s": row["elapsed_s"],
                "completed": row["completed"],
                "degraded_answers": row["degraded_answers"],
                "audit_entries": row["audit_entries"],
            },
            extra={"n_workers": row["n_workers"]},
        ),
    )
    print(f"merged chaos row into {OUT_PATH}; journal in {AUDIT_PATH}")


def main_trace() -> None:
    """Run the attribution bench and merge its row into BENCH_cluster.json."""
    row = bench_trace()
    print(
        f"trace attribution: {row['n_traces']} traces / {row['n_spans']} "
        f"spans (sample rate {row['sample_rate']})  "
        f"coverage mean {row['coverage_mean']:.1%} "
        f"min {row['coverage_min']:.1%}  "
        f"overhead off {row['overhead_off']:+.2%} "
        f"sampled {row['overhead_sampled']:+.2%}"
    )
    for name, stage in sorted(
        row["stages"].items(), key=lambda kv: -kv[1]["total_s"]
    ):
        print(
            f"  {name:16s} {stage['mean_ms']:8.3f} ms/req  "
            f"{stage['fraction']:6.1%} of traced wall clock  "
            f"(n={stage['count']})"
        )
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    else:
        payload = {
            "benchmark": (
                "ServiceCluster (multi-process, instance-affine) vs "
                "single-process serving"
            ),
            "results": [],
        }
    payload["results"] = [
        r for r in payload.get("results", []) if r.get("kind") != "attribution"
    ] + [row]
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    append_row(
        HISTORY_PATH,
        ledger_row(
            "cluster-trace",
            {
                "overhead_off": row["overhead_off"],
                "overhead_sampled": row["overhead_sampled"],
                "coverage_mean": row["coverage_mean"],
                "audit_entries": row["audit_entries"],
            },
            extra={"sample_rate": row["sample_rate"]},
        ),
    )
    print(f"merged attribution row into {OUT_PATH}; spans in {TRACE_PATH}")


def main_socket() -> None:
    """Run the transport-parity soak and merge its row into BENCH_cluster.json."""
    bench_workers = int(os.environ.get("BENCH_CLUSTER_WORKERS", 2))
    row = bench_socket(N_CONCURRENT, n_workers=bench_workers)
    print(
        f"socket parity: {row['n_requests']} requests x {row['n_workers']} "
        f"workers bit-identical over TCP  "
        f"pipe {row['pipe_s'] * 1e3:8.1f} ms ({row['pipe_rps']:6.0f} req/s)  "
        f"socket {row['socket_s'] * 1e3:8.1f} ms "
        f"({row['socket_rps']:6.0f} req/s)  "
        f"socket/pipe {row['socket_over_pipe']:.2f}x  "
        f"weighted share {row['weighted_ratio']:.2f}x (target 2.00±15%)"
    )
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    else:
        payload = {
            "benchmark": (
                "ServiceCluster (multi-process, instance-affine) vs "
                "single-process serving"
            ),
            "results": [],
        }
    payload["results"] = [
        r for r in payload.get("results", []) if r.get("kind") != "socket"
    ] + [row]
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    append_row(
        HISTORY_PATH,
        ledger_row(
            "cluster-socket",
            {
                "socket_rps": row["socket_rps"],
                "socket_over_pipe": row["socket_over_pipe"],
                "weighted_ratio": row["weighted_ratio"],
            },
            extra={"n_workers": row["n_workers"]},
        ),
    )
    print(f"merged socket row into {OUT_PATH}; appended cluster-socket ledger row")


if __name__ == "__main__":
    import sys

    if "--chaos" in sys.argv[1:]:
        main_chaos()
    elif "--trace" in sys.argv[1:]:
        main_trace()
    elif "--socket" in sys.argv[1:]:
        main_socket()
    else:
        main()
