"""Shared benchmark fixtures.

A single session-scoped :class:`ExperimentContext` is built once (training
sets are the expensive artifact) and shared by every bench.  Scale defaults
to ``small`` so the whole suite runs in minutes on a laptop; set
``REPRO_SCALE=paper`` to run the full paper configurations.

Every experiment bench writes its rendered table/series to
``benchmarks/out/<name>.txt`` so results can be inspected after the run
(EXPERIMENTS.md records one such run).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext, experiment_scale

OUT_DIR = Path(__file__).parent / "out"

#: training sizes used by the small-scale benches
SMALL_SIZES = (960, 2600)
PAPER_SIZES = (960, 3840, 6720, 16000)


def bench_sizes() -> tuple[int, ...]:
    """Training sizes matching the active scale."""
    return PAPER_SIZES if experiment_scale() == "paper" else SMALL_SIZES


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Shared context with the base training set prebuilt."""
    ctx = ExperimentContext(seed=0)
    ctx.base_training_set(max(bench_sizes()))
    return ctx


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_output(out_dir: Path, name: str, text: str) -> None:
    """Persist a rendered experiment output for post-run inspection."""
    (out_dir / f"{name}.txt").write_text(text + "\n")
