"""Fig. 4 bench: speedup over the GA base configuration.

Regenerates the Fig. 4 bars (searches at a fixed evaluation budget versus
ordinal-regression tuners at several training sizes) and asserts the
paper's qualitative shape: the model's top-ranked configuration is
competitive with the searches on most benchmarks without spending a single
target evaluation.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_sizes, save_output
from repro.experiments.common import experiment_scale
from repro.experiments.fig4 import Fig4Config, format_fig4, run_fig4
from repro.stencil.suite import TEST_BENCHMARKS

SMALL_BENCHMARKS = (
    "blur-1024x768",
    "tricubic-256x256x256",
    "edge-512x512",
    "gradient-256x256x256",
    "laplacian-128x128x128",
    "divergence-128x128x128",
)


def test_fig4_speedups(context, out_dir, benchmark):
    if experiment_scale() == "paper":
        config = Fig4Config(
            benchmarks=tuple(i.label() for i in TEST_BENCHMARKS),
            evaluations=1024,
            training_sizes=bench_sizes(),
        )
    else:
        config = Fig4Config(
            benchmarks=SMALL_BENCHMARKS,
            evaluations=192,
            training_sizes=bench_sizes(),
        )

    result = benchmark.pedantic(
        run_fig4, args=(config, context), rounds=1, iterations=1
    )
    save_output(out_dir, "fig4", format_fig4(result))

    regression_cols = [
        m for m in next(iter(result.speedups.values())) if "ord.regression" in m
    ]
    largest_model = regression_cols[-1]

    per_bench = np.array(
        [row[largest_model] for row in result.speedups.values()]
    )
    # paper shape: the model is within a factor ~2 of GA on every benchmark
    # (worst paper case: laplacian 128³ at 0.75) and near-GA on most
    assert per_bench.min() > 0.4
    assert np.median(per_bench) > 0.7
    # and on at least one benchmark it gets close to the search solutions
    assert per_bench.max() > 0.85
