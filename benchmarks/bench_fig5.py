"""Fig. 5 bench: search-progress curves and time-to-solution.

Regenerates the four per-stencil panels (best-so-far GFlop/s versus
evaluation count, ordinal-regression levels, time-to-solution bars) and
asserts the headline crossover: searches need many evaluations to reach the
level the model provides instantly, and their time-to-solution is orders of
magnitude larger.
"""

from __future__ import annotations

from benchmarks.conftest import bench_sizes, save_output
from repro.experiments.common import experiment_scale
from repro.experiments.fig5 import Fig5Config, PAPER_STENCILS, format_fig5, run_fig5


def test_fig5_progress(context, out_dir, benchmark):
    evaluations = 1024 if experiment_scale() == "paper" else 256
    config = Fig5Config(
        stencils=PAPER_STENCILS,
        evaluations=evaluations,
        training_sizes=bench_sizes(),
    )

    result = benchmark.pedantic(
        run_fig5, args=(config, context), rounds=1, iterations=1
    )
    save_output(out_dir, "fig5", format_fig5(result))

    for sp in result.stencils:
        best_level = max(sp.regression_levels.values())
        # time-to-solution asymmetry (the paper's log-scale bar chart)
        search_tts = min(
            v for k, v in sp.time_to_solution.items() if "regression" not in k
        )
        model_tts = max(
            v for k, v in sp.time_to_solution.items() if "regression" in k
        )
        assert model_tts < 1e-2 * search_tts

        # searches start below the model's level and need many evaluations
        # to pass it (paper: "only after hundreds of evaluations" on the
        # harder stencils); assert the level is above every search's
        # 4-evaluation point on at least one panel overall
    any_crossover = False
    for sp in result.stencils:
        best_level = max(sp.regression_levels.values())
        for series in sp.search_curves.values():
            if series[2] < best_level:  # search still below model at 4 evals
                any_crossover = True
    assert any_crossover
