"""Benchmark of the tuning service vs sequential per-request tuning.

Pins the perf claim the serving layer exists for: at 256 concurrent
mixed-instance ranking requests, the micro-batched, cached
:class:`TuningService` must clear **≥ 5×** the throughput of driving
``OrdinalAutotuner`` one ``tune()`` call at a time — while answering
bit-identically.  The speedup has two sources, both measured here: the
fused cross-instance encode+score pass (one stacked ``decision_function``
per micro-batch) and the ranking cache (repeat instances skip encoding
entirely; the workload has 16 distinct instances, each requested 16 times,
mirroring hot-kernel traffic).

Run under pytest for the CI-safe smoke (no timing assertions), or as a
script to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_service.py   # writes BENCH_service.json
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.executor import SimulatedMachine
from repro.obs.ledger import append_row, ledger_row
from repro.service import ModelRegistry, TuningService
from repro.stencil.suite import TEST_BENCHMARKS
from repro.tuning.presets import preset_candidates

N_CONCURRENT = 256
N_DISTINCT = 16
TRAINING_POINTS = 640
ARTIFACTS = Path(__file__).parent / "artifacts"
OUT_PATH = ARTIFACTS / "BENCH_service.json"
HISTORY_PATH = Path(__file__).parent.parent / "BENCH_history.jsonl"


def _train_tuner(points: int = TRAINING_POINTS) -> OrdinalAutotuner:
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    return OrdinalAutotuner().train(builder.build(points))


def _workload(n_requests: int):
    """Round-robin over 16 distinct instances (the Fig. 4 benchmarks)."""
    pool = TEST_BENCHMARKS[:N_DISTINCT]
    return [pool[i % len(pool)] for i in range(n_requests)]


def _sequential(tuner: OrdinalAutotuner, instances, presets) -> tuple[list, float]:
    """The baseline: one synchronous tune()-path ranking per request.

    The preset candidate lists are precomputed and shared, so the loop is
    charged for encode+score only — the same work ``tune()`` does per call,
    minus preset regeneration (which would only flatter the service).
    """
    start = time.perf_counter()
    rankings = [tuner.rank_candidates(q, presets[q.dims]) for q in instances]
    return rankings, time.perf_counter() - start


async def _serve(
    registry: ModelRegistry, instances, dtype: str = "float64"
) -> tuple[list, float, dict]:
    async with TuningService(registry, dtype=dtype) as service:
        start = time.perf_counter()
        responses = await asyncio.gather(*(service.rank(q) for q in instances))
        elapsed = time.perf_counter() - start
        return [r.ranked for r in responses], elapsed, service.stats()


def bench_service(n_requests: int = N_CONCURRENT, tuner=None) -> dict:
    """One full comparison run; returns the result row (plus raw rankings)."""
    tuner = tuner or _train_tuner()
    instances = _workload(n_requests)
    presets = {2: preset_candidates(2), 3: preset_candidates(3)}
    # untimed warmup: fault in numpy/BLAS and the allocator for both sides
    # (per-instance batches for the sequential path, one fused-scale pass
    # for the service path)
    pool = instances[: min(len(instances), N_DISTINCT)]
    _sequential(tuner, pool, presets)
    tuner.encoder.encode_many([(q, presets[q.dims]) for q in pool])
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        served, service_s, stats = asyncio.run(_serve(registry, instances))
    sequential, sequential_s = _sequential(tuner, instances, presets)
    return {
        "n_requests": n_requests,
        "n_distinct_instances": min(N_DISTINCT, n_requests),
        "candidates_per_request": sorted({len(presets[q.dims]) for q in instances}),
        "service_s": service_s,
        "sequential_s": sequential_s,
        "speedup": sequential_s / service_s,
        "service_rps": n_requests / service_s,
        "sequential_rps": n_requests / sequential_s,
        "stats": stats,
        "_served": served,
        "_sequential": sequential,
    }


def bench_float32(
    n_requests: int = N_CONCURRENT, tuner=None, top_k: int = 8
) -> dict:
    """The opt-in float32 serving path vs the float64 default.

    Measures wall clock for the same mixed preset load on both dtypes and
    pins how closely the float32 ranking tracks float64: exact top-k list
    matches, top-k set overlap, and top-1 agreement.  The float64 default
    keeps the bit-identity guarantee; float32 trades a documented sliver
    of ranking stability for smaller score buffers.
    """
    tuner = tuner or _train_tuner()
    instances = _workload(n_requests)
    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        served64, s64, _ = asyncio.run(_serve(registry, instances))
        served32, s32, _ = asyncio.run(_serve(registry, instances, dtype="float32"))
    overlaps, exact, top1 = [], 0, 0
    for r64, r32 in zip(served64, served32):
        k64, k32 = r64[:top_k], r32[:top_k]
        exact += k64 == k32
        top1 += k64[0] == k32[0]
        set64 = {v.as_tuple() for v in k64}
        set32 = {v.as_tuple() for v in k32}
        overlaps.append(len(set64 & set32) / max(len(set64), 1))
    return {
        "kind": "float32",
        "n_requests": n_requests,
        "top_k": top_k,
        "float64_s": s64,
        "float32_s": s32,
        "float32_speedup_vs_float64": s64 / s32,
        "topk_exact_match_rate": exact / n_requests,
        "topk_overlap_mean": sum(overlaps) / len(overlaps),
        "top1_agreement": top1 / n_requests,
    }


# -- pytest smoke (timing-free where CI is involved) ---------------------------


@pytest.fixture(scope="module")
def tuner():
    return _train_tuner()


def test_smoke_64_concurrent(tuner):
    """In-process server, ≥64 concurrent requests, cache must be hitting."""
    result = bench_service(64, tuner)
    assert result["_served"] == result["_sequential"]  # bit-identical answers
    assert result["stats"]["cache_hits"] > 0
    assert result["stats"]["failed_total"] == 0
    assert result["stats"]["mean_batch_size"] > 1.0


@pytest.mark.skipif(
    os.environ.get("CI", "").lower() == "true",
    reason="wall-clock speedup ratio is unreliable on shared CI runners",
)
def test_speedup_at_least_5x(tuner):
    """The acceptance bar: ≥5× at 256 concurrent mixed-instance requests."""
    result = bench_service(N_CONCURRENT, tuner)
    assert result["_served"] == result["_sequential"]
    assert result["speedup"] >= 5.0, f"service speedup only {result['speedup']:.1f}x"


def main() -> None:
    """Record the service-vs-sequential trajectory to BENCH_service.json."""
    tuner = _train_tuner()
    rows = []
    for n in (64, N_CONCURRENT):
        row = bench_service(n, tuner)
        assert row.pop("_served") == row.pop("_sequential"), "answers diverged"
        rows.append(row)
        print(
            f"n={n:4d}  service {row['service_s'] * 1e3:8.1f} ms "
            f"({row['service_rps']:7.0f} req/s)  "
            f"sequential {row['sequential_s'] * 1e3:8.1f} ms  "
            f"speedup {row['speedup']:5.1f}x  "
            f"batches {row['stats']['batches_total']}  "
            f"mean batch {row['stats']['mean_batch_size']:.1f}  "
            f"hit rate {row['stats']['cache_hit_rate']:.2f}  "
            f"p99 {row['stats']['latency_p99_ms']:.1f} ms"
        )
    f32 = bench_float32(N_CONCURRENT, tuner)
    rows.append(f32)
    print(
        f"float32: {f32['float32_s'] * 1e3:8.1f} ms vs "
        f"float64 {f32['float64_s'] * 1e3:8.1f} ms "
        f"({f32['float32_speedup_vs_float64']:.2f}x)  "
        f"top-{f32['top_k']} exact {f32['topk_exact_match_rate']:.1%}  "
        f"overlap {f32['topk_overlap_mean']:.1%}  "
        f"top-1 {f32['top1_agreement']:.1%}"
    )
    payload = {
        "benchmark": "TuningService (micro-batched + cached) vs sequential tune()",
        "workload": (
            f"{N_CONCURRENT} concurrent requests round-robin over "
            f"{N_DISTINCT} distinct instances, full preset candidate sets "
            f"(1600 2-D / 8640 3-D)"
        ),
        "results": rows,
    }
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    headline = rows[1]  # the N_CONCURRENT service row, not the float32 row
    append_row(
        HISTORY_PATH,
        ledger_row(
            "service",
            {
                "speedup": float(headline["speedup"]),
                "service_rps": float(headline["service_rps"]),
                "latency_p99_ms": float(headline["stats"]["latency_p99_ms"]),
            },
            extra={"n_requests": headline["n_requests"]},
        ),
    )
    print(f"appended ledger row to {HISTORY_PATH}")


if __name__ == "__main__":
    main()
