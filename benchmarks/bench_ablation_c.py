"""Ablation: sensitivity to the SVM trade-off parameter C (paper §VI uses
C = 0.01) and to the pair-weighting convention.

The paper fixes C = 0.01 without a sweep; this bench supplies the missing
sensitivity study: Kendall τ on the training set across four orders of
magnitude of C, plus the ``sum`` (svmrank-equivalent) versus ``mean``
(literal Eq. 3) slack weighting.
"""

from __future__ import annotations

from benchmarks.conftest import bench_sizes, save_output
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.util.tables import Table

C_GRID = (1e-4, 1e-2, 1.0, 100.0)


def test_c_sensitivity(context, out_dir, benchmark):
    data = context.training_set(bench_sizes()[0]).data

    def sweep():
        rows = []
        for C in C_GRID:
            for weighting in ("sum", "mean"):
                model = RankSVM(
                    RankSVMConfig(C=C, pair_weighting=weighting, seed=0)
                ).fit(data)
                rows.append(
                    {
                        "C": C,
                        "weighting": weighting,
                        "tau": model.mean_kendall(data),
                        "pairs": model.num_pairs_,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(["C", "weighting", "tau", "pairs"], title="Ablation — C sensitivity")
    for row in rows:
        table.add_mapping(row)
    save_output(out_dir, "ablation_c", table.render(floatfmt=".3f"))

    by_key = {(r["C"], r["weighting"]): r["tau"] for r in rows}
    # the svmrank-equivalent weighting at the paper's C is solidly positive
    assert by_key[(1e-2, "sum")] > 0.45
    # literal mean weighting at C = 0.01 underfits dramatically
    assert by_key[(1e-2, "mean")] < by_key[(1e-2, "sum")] - 0.1
    # C is forgiving over orders of magnitude with sum weighting
    assert abs(by_key[(1.0, "sum")] - by_key[(1e-2, "sum")]) < 0.2
