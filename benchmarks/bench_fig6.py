"""Fig. 6 bench: per-instance Kendall τ at two training sizes."""

from __future__ import annotations

from benchmarks.conftest import bench_sizes, save_output
from repro.experiments.fig6 import Fig6Config, format_fig6, run_fig6


def test_fig6_kendall(context, out_dir, benchmark):
    sizes = (bench_sizes()[0], bench_sizes()[-1])
    config = Fig6Config(sizes=sizes)

    result = benchmark.pedantic(
        run_fig6, args=(config, context), rounds=1, iterations=1
    )
    save_output(out_dir, "fig6", format_fig6(result))

    small, large = sizes
    s_stats = result.stats(small)
    l_stats = result.stats(large)
    # paper shape: τ improves (or holds) with training size and the
    # correlation is clearly positive at the larger size
    assert l_stats["mean"] >= s_stats["mean"] - 0.05
    assert l_stats["median"] > 0.3
    # some instances remain badly ranked even at larger sizes (the paper's
    # Fig. 6 shows negative outliers) — the distribution is not degenerate
    assert l_stats["min"] < l_stats["median"]
