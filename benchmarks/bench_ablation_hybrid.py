"""Ablation: model-seeded search (the paper's §VII future work).

Seeds a steady-state GA with the ranking model's top candidates and
compares early-budget progress against the plain GA — quantifying how much
iterative compilation the trained model can skip.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_sizes, save_output
from repro.search.genetic import GenerationalGA
from repro.search.hybrid import ModelSeededSearch
from repro.stencil.suite import benchmark_by_id
from repro.tuning.space import patus_space
from repro.util.tables import Table

TARGETS = ("laplacian-256x256x256", "gradient-128x128x128")
BUDGET = 64


def test_model_seeded_search(context, out_dir, benchmark):
    tuner = context.tuner(bench_sizes()[-1])
    assert tuner.model is not None

    def run_all():
        rows = []
        for label in TARGETS:
            inst = benchmark_by_id(label)
            plain = GenerationalGA(patus_space(3), context.machine.fork(), seed=3)
            seeded = ModelSeededSearch(
                patus_space(3),
                context.machine.fork(),
                tuner.model,
                tuner.encoder,
                seed=3,
            )
            p = plain.tune(inst, budget=BUDGET)
            s = seeded.tune(inst, budget=BUDGET)
            p_curve = p.best_curve([8, BUDGET])
            s_curve = s.best_curve([8, BUDGET])
            rows.append(
                {
                    "benchmark": label,
                    "plain@8": p_curve[8],
                    "seeded@8": s_curve[8],
                    "plain@64": p_curve[BUDGET],
                    "seeded@64": s_curve[BUDGET],
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        ["benchmark", "plain@8", "seeded@8", "plain@64", "seeded@64"],
        title="Ablation — model-seeded search (times in s, lower is better)",
    )
    for row in rows:
        table.add_mapping(row)
    save_output(out_dir, "ablation_hybrid", table.render(floatfmt=".4g"))

    # seeding must help (or at worst tie) in the early-budget regime
    early_ratio = np.mean([r["seeded@8"] / r["plain@8"] for r in rows])
    assert early_ratio < 1.1
