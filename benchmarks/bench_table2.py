"""Table II bench: phase timing versus training-set size.

Regenerates the paper's Table II rows (TS compile accounting, TS generation
accounting, measured training wall-clock, measured regression wall-clock)
and additionally micro-benchmarks the two *measured* phases so
pytest-benchmark reports robust statistics for them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_sizes, save_output
from repro.experiments.table2 import Table2Config, format_table2, run_table2
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates


def test_table2_rows(context, out_dir, benchmark):
    """Regenerate all Table II rows (one pedantic round)."""
    config = Table2Config(sizes=bench_sizes())

    result = benchmark.pedantic(
        run_table2, args=(config, context), rounds=1, iterations=1
    )
    text = format_table2(result)
    save_output(out_dir, "table2", text)
    # shape assertions: generation grows with size, ranking stays sub-second
    gens = [row["ts_generation_s"] for row in result.rows]
    assert gens == sorted(gens)
    assert all(row["regression_s"] < 1.0 for row in result.rows)
    # TS compile accounting lands in the paper's tens-of-hours regime
    assert 16 * 3600 < result.rows[0]["ts_comp_s"] < 64 * 3600


def test_training_phase(context, benchmark):
    """Measured RankSVM fit time at the smallest Table II size."""
    data = context.training_set(bench_sizes()[0]).data

    def fit():
        return RankSVM(RankSVMConfig(seed=0)).fit(data)

    model = benchmark(fit)
    assert model.is_fitted


def test_regression_phase(context, benchmark):
    """Measured ranking time for the 8640-candidate 3-D preset set.

    The paper reports < 1 ms for the SVM-Rank binary; the pure-numpy path
    stays within a small constant factor of that.
    """
    tuner = context.tuner(bench_sizes()[0])
    instance = benchmark_by_id("laplacian-128x128x128")
    candidates = preset_candidates(3)
    X = tuner.encoder.encode_batch(instance, candidates)
    model = tuner.model
    assert model is not None

    scores = benchmark(lambda: model.decision_function(X))
    assert scores.shape == (8640,)
