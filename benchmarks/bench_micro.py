"""Micro-benchmarks of the hot paths.

These pin the performance claims the library's design depends on: batch
feature encoding of the full 8640-candidate preset, model scoring (Table
II's "< 1 ms regression"), O(n log n) Kendall τ at candidate-set size, pair
generation, and single cost-model evaluations (what every simulated
"execution" costs the experiment harnesses).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.encoder import FeatureEncoder
from repro.machine.cost import CostModel
from repro.ranking.kendall import kendall_tau
from repro.ranking.partial import group_pairs
from repro.stencil.execution import StencilExecution
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.tuning.vector import TuningVector


@pytest.fixture(scope="module")
def encoder():
    return FeatureEncoder()


@pytest.fixture(scope="module")
def instance():
    return benchmark_by_id("laplacian-128x128x128")


@pytest.fixture(scope="module")
def candidates():
    return preset_candidates(3)


def test_encode_preset_batch(benchmark, encoder, instance, candidates):
    """Encoding all 8640 3-D candidates for one instance."""
    X = benchmark(lambda: encoder.encode_batch(instance, candidates))
    assert X.shape == (8640, encoder.num_features)


def test_score_preset_batch(benchmark, encoder, instance, candidates):
    """The Table II 'Regression' row: one matrix-vector product."""
    X = encoder.encode_batch(instance, candidates)
    w = np.random.default_rng(0).random(encoder.num_features)
    scores = benchmark(lambda: X @ w)
    assert scores.shape == (8640,)


def test_kendall_tau_at_candidate_scale(benchmark):
    rng = np.random.default_rng(1)
    x = rng.random(8640)
    y = x + 0.1 * rng.random(8640)
    tau = benchmark(lambda: kendall_tau(x, y))
    assert tau > 0.5


def test_pair_generation(benchmark):
    rng = np.random.default_rng(2)
    times = rng.random(200)
    better, worse = benchmark(lambda: group_pairs(times, max_pairs=3000, rng=0))
    assert better.size == 3000


def test_cost_model_single_eval(benchmark, instance):
    model = CostModel()
    execution = StencilExecution(instance, TuningVector(64, 16, 16, 2, 1))
    t = benchmark(lambda: model.sweep_cost(execution).total_s)
    assert t > 0


def test_cost_model_across_tunings(benchmark, instance):
    """Cost of evaluating a fresh tuning vector (no cache)."""
    model = CostModel()
    from repro.tuning.space import patus_space

    tunings = patus_space(3).random_vectors(64, rng=3)
    idx = iter(range(10**9))

    def one():
        i = next(idx) % len(tunings)
        return model.sweep_cost(StencilExecution(instance, tunings[i])).total_s

    t = benchmark(one)
    assert t > 0
