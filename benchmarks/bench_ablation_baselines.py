"""Ablation: ordinal regression versus the §IV-A strawmen.

Compares RankSVM against runtime regression and best-variant
classification on the same training set, evaluating (a) training-set τ and
(b) top-1 regret when ranking the pre-defined candidates of an unseen
benchmark — the paper's argument for the ranking formulation, quantified.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_sizes, save_output
from repro.learn.baselines import RuntimeRegression, VariantClassifier
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.ranking.kendall import kendall_tau
from repro.ranking.metrics import top_k_regret
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.util.tables import Table

HELD_OUT = ("laplacian-256x256x256", "tricubic-128x128x128", "blur-1024x768")


def test_model_comparison(context, out_dir, benchmark):
    ts = context.training_set(bench_sizes()[-1])
    data = ts.data
    encoder = context.encoder
    machine = context.machine
    tuning_slice = slice(
        encoder._pattern_cells + encoder.N_INSTANCE,
        encoder._pattern_cells + encoder.N_INSTANCE + encoder.N_TUNING,
    )

    def run_all():
        models = {
            "ordinal regression (RankSVM)": RankSVM(RankSVMConfig(seed=0)).fit(data),
            "runtime regression": RuntimeRegression().fit(data),
            "variant classification": VariantClassifier(
                num_classes=16, tuning_slice=tuning_slice
            ).fit(data),
        }
        rows = []
        for name, model in models.items():
            taus, regrets = [], []
            for label in HELD_OUT:
                inst = benchmark_by_id(label)
                cands = preset_candidates(inst.dims)[::4]
                X = encoder.encode_batch(inst, cands)
                scores = model.decision_function(X)
                truth = machine.true_times(inst, cands)
                taus.append(kendall_tau(-scores, truth))
                regrets.append(top_k_regret(truth, scores, k=1))
            rows.append(
                {
                    "model": name,
                    "held-out tau": float(np.mean(taus)),
                    "top-1 regret": float(np.mean(regrets)),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        ["model", "held-out tau", "top-1 regret"],
        title="Ablation — ranking vs regression vs classification",
    )
    for row in rows:
        table.add_mapping(row)
    save_output(out_dir, "ablation_baselines", table.render(floatfmt=".3f"))

    by_model = {r["model"]: r for r in rows}
    rank_tau = by_model["ordinal regression (RankSVM)"]["held-out tau"]
    # the paper's claim: ranking matches or beats both traditional framings
    assert rank_tau >= by_model["runtime regression"]["held-out tau"] - 0.05
    assert rank_tau > by_model["variant classification"]["held-out tau"] - 0.05
    assert by_model["ordinal regression (RankSVM)"]["top-1 regret"] < 1.0
