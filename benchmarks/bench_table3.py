"""Table III bench: registry regeneration + reference-executor throughput.

Besides printing the benchmark registry, this bench times one reference
(numpy) sweep of each Table III kernel at a reduced size — a sanity check
that the functional substrate scales sensibly with pattern density.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_output
from repro.experiments.table3 import format_table3, run_table3
from repro.stencil.grid import Grid
from repro.stencil.reference import apply_kernel
from repro.stencil.suite import BENCHMARKS


def test_table3_registry(benchmark, out_dir):
    """Regenerate the Table III rows."""
    result = benchmark(run_table3)
    save_output(out_dir, "table3", format_table3(result))
    assert len(result.rows) == 9
    assert result.num_benchmarks == 17


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_reference_sweep(benchmark, name):
    """One numpy reference sweep per kernel (reduced grids)."""
    bench = BENCHMARKS[name]
    kernel = bench.kernel
    size = (64, 64, 64) if kernel.dims == 3 else (512, 512, 1)
    halo = kernel.radius
    grids = [
        Grid.random(size, halo=halo, dtype=kernel.dtype, rng=i)
        for i in range(kernel.num_buffers)
    ]
    out = Grid.zeros(size, halo, kernel.dtype)

    result = benchmark(lambda: apply_kernel(kernel, grids, out=out))
    assert float(abs(result.interior).sum()) > 0
