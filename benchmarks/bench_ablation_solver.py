"""Ablation: L-BFGS (squared hinge) versus Pegasos-SGD (linear hinge).

Both optimize the same pairwise objective; this bench compares their wall
clock and the ranking quality of the learned direction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_sizes, save_output
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.util.tables import Table


@pytest.mark.parametrize("solver", ["lbfgs", "sgd"])
def test_solver_fit_time(context, benchmark, solver):
    data = context.training_set(bench_sizes()[0]).data

    model = benchmark.pedantic(
        lambda: RankSVM(RankSVMConfig(solver=solver, seed=0)).fit(data),
        rounds=1,
        iterations=1,
    )
    assert model.is_fitted


def test_solver_quality(context, out_dir, benchmark):
    data = context.training_set(bench_sizes()[0]).data

    def compare():
        out = {}
        for solver in ("lbfgs", "sgd"):
            model = RankSVM(RankSVMConfig(solver=solver, seed=0)).fit(data)
            out[solver] = model.mean_kendall(data)
        return out

    taus = benchmark.pedantic(compare, rounds=1, iterations=1)

    table = Table(["solver", "train tau"], title="Ablation — solver choice")
    for solver, tau in taus.items():
        table.add_row([solver, tau])
    save_output(out_dir, "ablation_solver", table.render(floatfmt=".3f"))

    assert taus["lbfgs"] > 0.45
    # SGD is stochastic and first-order but must stay in the same regime
    assert taus["sgd"] > taus["lbfgs"] - 0.25
