"""Ablation: feature-encoding variants.

The reproduction's DESIGN.md calls out one deliberate design choice: a
purely concatenated encoding (the paper's literal description) cancels all
instance features inside within-query pairwise differences, so rankings
cannot depend on the stencil.  This bench quantifies that choice by
training with (a) the full encoder, (b) no interaction block, and (c) no
pattern block, comparing training-set τ.
"""

from __future__ import annotations

from benchmarks.conftest import bench_sizes, save_output
from repro.autotune.training import TrainingSetBuilder
from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.machine.executor import SimulatedMachine
from repro.util.tables import Table

VARIANTS = {
    "full (pattern + interactions)": FeatureEncoder(),
    "no interactions (paper-literal concat)": FeatureEncoder(interactions=False),
    "no pattern block": FeatureEncoder(include_pattern=False),
}


def test_feature_variants(out_dir, benchmark):
    size = bench_sizes()[0]

    def sweep():
        rows = []
        for name, encoder in VARIANTS.items():
            builder = TrainingSetBuilder(
                machine=SimulatedMachine(seed=0), encoder=encoder, seed=0
            )
            ts = builder.build(size)
            model = RankSVM(RankSVMConfig(seed=0)).fit(ts.data)
            rows.append(
                {
                    "encoder": name,
                    "features": encoder.num_features,
                    "tau": model.mean_kendall(ts.data),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(["encoder", "features", "tau"], title="Ablation — feature groups")
    for row in rows:
        table.add_mapping(row)
    save_output(out_dir, "ablation_features", table.render(floatfmt=".3f"))

    taus = {r["encoder"]: r["tau"] for r in rows}
    full = taus["full (pattern + interactions)"]
    concat = taus["no interactions (paper-literal concat)"]
    # interactions are what let the linear ranker adapt per instance
    assert full > concat + 0.05
    # the concat model still learns a useful *global* tuning preference
    assert concat > 0.2
